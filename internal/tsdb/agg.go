package tsdb

import (
	"math"
	"math/bits"
	"sort"
	"time"

	"repro/internal/lineproto"
)

// AggFunc names an aggregation function applied to a column of values.
type AggFunc string

// Supported aggregators. They mirror the InfluxQL functions the LMS
// dashboards and analysis queries use.
const (
	AggNone       AggFunc = ""
	AggCount      AggFunc = "count"
	AggSum        AggFunc = "sum"
	AggMean       AggFunc = "mean"
	AggMin        AggFunc = "min"
	AggMax        AggFunc = "max"
	AggFirst      AggFunc = "first"
	AggLast       AggFunc = "last"
	AggSpread     AggFunc = "spread"
	AggStddev     AggFunc = "stddev"
	AggMedian     AggFunc = "median"
	AggPercentile AggFunc = "percentile"
	AggDerivative AggFunc = "derivative" // per-second first derivative
)

// ValidAgg reports whether name is a known aggregator.
func ValidAgg(name string) bool {
	switch AggFunc(name) {
	case AggCount, AggSum, AggMean, AggMin, AggMax, AggFirst, AggLast,
		AggSpread, AggStddev, AggMedian, AggPercentile, AggDerivative:
		return true
	}
	return false
}

func sum(nums []float64) float64 {
	// Kahan summation keeps long-window aggregates stable.
	var s, c float64
	for _, v := range nums {
		s, c = kahanStep(s, c, v)
	}
	return s
}

// kahanStep adds v to the compensated accumulator (s, c).
func kahanStep(s, c, v float64) (float64, float64) {
	y := v - c
	t := s + y
	c = (t - s) - y
	return t, c
}

// percentileSorted returns the p-th percentile (0..100) over an
// already-sorted slice, using linear interpolation between closest ranks.
func percentileSorted(s []float64, p float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

func rangeNS(start, end time.Time) (int64, int64) {
	startNS := int64(minInt64)
	endNS := int64(maxInt64)
	if !start.IsZero() {
		startNS = start.UnixNano()
	}
	if !end.IsZero() {
		endNS = end.UnixNano()
	}
	return startNS, endNS
}

const (
	minInt64 = -1 << 63
	maxInt64 = 1<<63 - 1
)

// --- mergeable partial aggregates --------------------------------------
//
// The lock-light read path (select.go) pushes aggregation down to the
// per-series point runs: each run folds into a partial, and partials merge
// in a fixed order. count/sum/min/max/mean (and spread, first/last,
// derivative) merge exactly from O(1) state; stddev/median/percentile
// retain their values as sorted runs and merge those. Because the merge
// order is data-determined, the result is independent of how many workers
// computed the partials.

// partialMode selects the state a partial has to carry for its aggregator.
type partialMode int

const (
	modeCount partialMode = iota
	modeFirstLast
	modeDerivative
	modeSum    // sum, mean
	modeMinMax // min, max, spread
	modeVals   // stddev, median, percentile
)

func modeOf(agg AggFunc) partialMode {
	switch agg {
	case AggCount:
		return modeCount
	case AggFirst, AggLast:
		return modeFirstLast
	case AggDerivative:
		return modeDerivative
	case AggSum, AggMean:
		return modeSum
	case AggMin, AggMax, AggSpread:
		return modeMinMax
	default: // AggStddev, AggMedian, AggPercentile
		return modeVals
	}
}

// partial is the mergeable state of one aggregator over one point run.
type partial struct {
	agg  AggFunc
	pct  float64
	mode partialMode

	n         int64 // observations (modeCount: any kind, otherwise numeric)
	sum, comp float64
	min, max  float64
	hasNum    bool

	hasAny          bool
	firstT, lastT   int64
	firstV, lastV   lineproto.Value
	dFirstT, dLastT int64
	dFirst, dLast   float64

	vals []float64 // time-ordered while observing, sorted by finalize
}

func newPartial(agg AggFunc, pct float64) *partial {
	return &partial{agg: agg, pct: pct, mode: modeOf(agg)}
}

// observe folds one value in. t must be non-decreasing within a run.
func (p *partial) observe(t int64, v lineproto.Value) {
	if p.mode == modeCount {
		p.n++
		return
	}
	if p.mode == modeFirstLast {
		if !p.hasAny || t < p.firstT {
			p.firstT, p.firstV = t, v
		}
		if !p.hasAny || t >= p.lastT {
			p.lastT, p.lastV = t, v
		}
		p.hasAny = true
		return
	}
	if v.Kind() == lineproto.KindString {
		return
	}
	f := v.FloatVal()
	switch p.mode {
	case modeDerivative:
		if !p.hasNum {
			p.dFirstT, p.dFirst = t, f
		}
		p.dLastT, p.dLast = t, f
		p.n++
		p.hasNum = true
	case modeSum:
		p.sum, p.comp = kahanStep(p.sum, p.comp, f)
		p.n++
		p.hasNum = true
	case modeMinMax:
		if !p.hasNum || f < p.min {
			p.min = f
		}
		if !p.hasNum || f > p.max {
			p.max = f
		}
		p.hasNum = true
	case modeVals:
		p.vals = append(p.vals, f)
	}
}

// finalize prepares a run partial for merging (sorts the value run).
func (p *partial) finalize() {
	if p.mode == modeVals {
		sort.Float64s(p.vals)
	}
}

// merge folds a finalized partial o into p. On timestamp ties the earlier
// merge position wins "first" and the later one wins "last", matching the
// stable time-merge of the serial reference.
func (p *partial) merge(o *partial) {
	switch p.mode {
	case modeCount:
		p.n += o.n
	case modeFirstLast:
		if !o.hasAny {
			return
		}
		if !p.hasAny {
			*p = *o
			return
		}
		if o.firstT < p.firstT {
			p.firstT, p.firstV = o.firstT, o.firstV
		}
		if o.lastT >= p.lastT {
			p.lastT, p.lastV = o.lastT, o.lastV
		}
	case modeDerivative:
		if !o.hasNum {
			return
		}
		if !p.hasNum {
			*p = *o
			return
		}
		if o.dFirstT < p.dFirstT {
			p.dFirstT, p.dFirst = o.dFirstT, o.dFirst
		}
		if o.dLastT >= p.dLastT {
			p.dLastT, p.dLast = o.dLastT, o.dLast
		}
		p.n += o.n
	case modeSum:
		if !o.hasNum {
			return
		}
		p.sum, p.comp = kahanStep(p.sum, p.comp, o.sum)
		p.sum, p.comp = kahanStep(p.sum, p.comp, -o.comp)
		p.n += o.n
		p.hasNum = true
	case modeMinMax:
		if !o.hasNum {
			return
		}
		if !p.hasNum || o.min < p.min {
			p.min = o.min
		}
		if !p.hasNum || o.max > p.max {
			p.max = o.max
		}
		p.hasNum = true
	case modeVals:
		if len(o.vals) == 0 {
			return
		}
		if len(p.vals) == 0 {
			p.vals = o.vals
			return
		}
		merged := make([]float64, 0, len(p.vals)+len(o.vals))
		i, j := 0, 0
		for i < len(p.vals) && j < len(o.vals) {
			if p.vals[i] <= o.vals[j] {
				merged = append(merged, p.vals[i])
				i++
			} else {
				merged = append(merged, o.vals[j])
				j++
			}
		}
		merged = append(merged, p.vals[i:]...)
		p.vals = append(merged, o.vals[j:]...)
	}
}

// --- vectorized column folds -------------------------------------------
//
// foldView feeds rows [lo, hi) of one snapshotted column into a partial.
// It is the columnar replacement of the per-row observe loop: for typed
// dense columns the inner loops are index-free sweeps over contiguous
// []float64 / []int64 slices — no field-map lookup, no Value boxing — and
// first/last/derivative collapse to O(1) endpoint reads. Every path is
// observation-order-identical to calling p.observe per row, so results
// stay byte-identical to the row engine.

// popcountRange counts set bits in [lo, hi) of bm.
func popcountRange(bm []uint64, lo, hi int) int {
	if lo >= hi {
		return 0
	}
	loW, hiW := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - (uint(hi-1) & 63))
	if loW == hiW {
		return bits.OnesCount64(bm[loW] & loMask & hiMask)
	}
	n := bits.OnesCount64(bm[loW]&loMask) + bits.OnesCount64(bm[hiW]&hiMask)
	for w := loW + 1; w < hiW; w++ {
		n += bits.OnesCount64(bm[w])
	}
	return n
}

// foldView feeds column ci of the run snapshot, rows [lo, hi), into p.
func foldView(p *partial, rs *runSnap, ci, lo, hi int, strs []string) {
	v := &rs.cols[ci]
	if !v.ok || lo >= hi {
		return
	}
	if v.mixed {
		// Mixed-kind columns fall back to the per-row observe loop.
		for i := lo; i < hi; i++ {
			if v.has(i) {
				p.observe(rs.ts[i], v.vals[i])
			}
		}
		return
	}
	switch p.mode {
	case modeCount:
		if v.present == nil {
			p.n += int64(hi - lo)
		} else {
			p.n += int64(popcountRange(v.present, v.off+lo, v.off+hi))
		}
		return
	case modeFirstLast:
		first := v.firstPresent(lo, hi)
		if first < 0 {
			return
		}
		last := v.lastPresent(lo, hi)
		fv, _ := v.valueAt(first, strs)
		lv, _ := v.valueAt(last, strs)
		p.observe(rs.ts[first], fv)
		p.observe(rs.ts[last], lv)
		return
	}
	// The remaining modes are numeric: string columns contribute nothing.
	if v.kind == lineproto.KindString {
		return
	}
	switch p.mode {
	case modeDerivative:
		first := v.firstPresent(lo, hi)
		if first < 0 {
			return
		}
		last := v.lastPresent(lo, hi)
		var n int64
		if v.present == nil {
			n = int64(hi - lo)
		} else {
			n = int64(popcountRange(v.present, v.off+lo, v.off+hi))
		}
		if !p.hasNum {
			p.dFirstT, p.dFirst = rs.ts[first], v.floatAt(first)
		}
		p.dLastT, p.dLast = rs.ts[last], v.floatAt(last)
		p.n += n
		p.hasNum = true
	case modeSum:
		if v.kind == lineproto.KindFloat && v.present == nil {
			for _, f := range v.floats[lo:hi] {
				p.sum, p.comp = kahanStep(p.sum, p.comp, f)
			}
			p.n += int64(hi - lo)
			p.hasNum = true
			return
		}
		cnt := int64(0)
		for i := lo; i < hi; i++ {
			if v.has(i) {
				p.sum, p.comp = kahanStep(p.sum, p.comp, v.floatAt(i))
				cnt++
			}
		}
		if cnt > 0 {
			p.n += cnt
			p.hasNum = true
		}
	case modeMinMax:
		if v.kind == lineproto.KindFloat && v.present == nil {
			for _, f := range v.floats[lo:hi] {
				if !p.hasNum {
					p.min, p.max, p.hasNum = f, f, true
					continue
				}
				if f < p.min {
					p.min = f
				}
				if f > p.max {
					p.max = f
				}
			}
			return
		}
		for i := lo; i < hi; i++ {
			if !v.has(i) {
				continue
			}
			f := v.floatAt(i)
			if !p.hasNum {
				p.min, p.max, p.hasNum = f, f, true
				continue
			}
			if f < p.min {
				p.min = f
			}
			if f > p.max {
				p.max = f
			}
		}
	case modeVals:
		if v.kind == lineproto.KindFloat && v.present == nil {
			p.vals = append(p.vals, v.floats[lo:hi]...)
			return
		}
		for i := lo; i < hi; i++ {
			if v.has(i) {
				p.vals = append(p.vals, v.floatAt(i))
			}
		}
	}
}

// floatAt returns local row i of a typed numeric column as float64,
// mirroring lineproto.Value.FloatVal (ints and bools convert).
func (v *colView) floatAt(i int) float64 {
	if v.kind == lineproto.KindFloat {
		return v.floats[i]
	}
	return float64(v.ints[i]) // KindInt, KindBool (0/1)
}

// result produces the final aggregate value; false when no value applies.
func (p *partial) result() (lineproto.Value, bool) {
	switch p.mode {
	case modeCount:
		if p.n == 0 {
			return lineproto.Value{}, false
		}
		return lineproto.Int(p.n), true
	case modeFirstLast:
		if !p.hasAny {
			return lineproto.Value{}, false
		}
		if p.agg == AggFirst {
			return p.firstV, true
		}
		return p.lastV, true
	case modeDerivative:
		if p.n < 2 || p.dLastT == p.dFirstT {
			return lineproto.Value{}, false
		}
		dt := float64(p.dLastT-p.dFirstT) / 1e9
		return lineproto.Float((p.dLast - p.dFirst) / dt), true
	case modeSum:
		if !p.hasNum {
			return lineproto.Value{}, false
		}
		if p.agg == AggSum {
			return lineproto.Float(p.sum), true
		}
		return lineproto.Float(p.sum / float64(p.n)), true
	case modeMinMax:
		if !p.hasNum {
			return lineproto.Value{}, false
		}
		switch p.agg {
		case AggMin:
			return lineproto.Float(p.min), true
		case AggMax:
			return lineproto.Float(p.max), true
		default:
			return lineproto.Float(p.max - p.min), true
		}
	default: // modeVals
		if len(p.vals) == 0 {
			return lineproto.Value{}, false
		}
		switch p.agg {
		case AggStddev:
			if len(p.vals) < 2 {
				return lineproto.Float(0), true
			}
			mean := sum(p.vals) / float64(len(p.vals))
			var ss float64
			for _, v := range p.vals {
				d := v - mean
				ss += d * d
			}
			return lineproto.Float(math.Sqrt(ss / float64(len(p.vals)-1))), true
		case AggMedian:
			return lineproto.Float(percentileSorted(p.vals, 50)), true
		default: // AggPercentile
			return lineproto.Float(percentileSorted(p.vals, p.pct)), true
		}
	}
}
