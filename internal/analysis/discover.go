package analysis

import (
	"context"
	"sort"

	"repro/internal/tsdb"
)

// DiscoverJobNodes finds the hostnames participating in a job: the
// distinct hostname tag values of series tagged jobid=<id>, collected with
// one batched LIMIT 1 query per measurement (the snapshot clamps every
// matching run to a single row, so this stays cheap over large series, and
// against a remote lms-db it is two round trips total). Dumps recorded
// without job enrichment carry no jobid tags; those fall back to every
// hostname in the database — the pre-existing single-job-dump behavior.
// Against a shared multi-job database the jobid scoping is what keeps
// other jobs' nodes out of the report.
func DiscoverJobNodes(ctx context.Context, qr tsdb.Querier, db, jobID string) ([]string, error) {
	meas, err := tsdb.QueryStrings(ctx, qr, db, tsdb.ShowMeasurementsStatement(), 0)
	if err != nil {
		return nil, err
	}
	stmts := make([]tsdb.Statement, len(meas))
	for i, m := range meas {
		stmts[i] = tsdb.SelectStatement(tsdb.Query{
			Measurement: m,
			Filter:      tsdb.TagFilter{"jobid": jobID},
			GroupByTags: []string{"hostname"},
			Limit:       1,
		})
	}
	set := map[string]struct{}{}
	if len(stmts) > 0 {
		resp, err := qr.Query(ctx, tsdb.Request{Database: db, Statements: stmts})
		if err != nil {
			return nil, err
		}
		if err := resp.Err(); err != nil {
			return nil, err
		}
		for _, res := range resp.Results {
			for _, s := range res.Series {
				if v := s.Tags["hostname"]; v != "" {
					set[v] = struct{}{}
				}
			}
		}
	}
	if len(set) == 0 {
		return tsdb.QueryStrings(ctx, qr, db, tsdb.ShowTagValuesStatement("", "hostname"), 1)
	}
	nodes := make([]string, 0, len(set))
	for v := range set {
		nodes = append(nodes, v)
	}
	sort.Strings(nodes)
	return nodes, nil
}
