package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/hpm"
	"repro/internal/jobsched"
	"repro/internal/lineproto"
	"repro/internal/tsdb"
	"repro/internal/workload"
)

func smallTopo() hpm.Topology {
	return hpm.Topology{Sockets: 1, CoresPerSocket: 4, ThreadsPerCore: 1, BaseClockMHz: 2200}
}

func newSim(t *testing.T, nodes int) (*Stack, *Simulation) {
	t.Helper()
	stack, sim, err := NewSimulatedStack(
		StackConfig{PerUserDBs: true},
		SimConfig{Nodes: nodes, Topology: smallTopo(), CollectInterval: 30},
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = stack.Close() })
	return stack, sim
}

func TestNewStackDefaults(t *testing.T) {
	stack, err := NewStack(StackConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()
	if stack.DBName() != "lms" || stack.DB == nil || stack.Router == nil {
		t.Fatalf("%+v", stack)
	}
	if stack.Publisher != nil {
		t.Fatal("publisher without address")
	}
}

func TestNewStackWithPublisher(t *testing.T) {
	stack, err := NewStack(StackConfig{PubSubAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()
	if stack.Publisher == nil || stack.Publisher.Addr() == "" {
		t.Fatal("publisher missing")
	}
}

func TestSimulationValidation(t *testing.T) {
	stack, _ := NewStack(StackConfig{})
	defer stack.Close()
	if _, err := NewSimulation(stack, SimConfig{}); err == nil {
		t.Fatal("zero nodes accepted")
	}
	_, sim := newSim(t, 2)
	if err := sim.SubmitJob(jobsched.JobRequest{ID: "x", Nodes: 1}, nil); err == nil {
		t.Fatal("nil model accepted")
	}
}

func TestSimulationEndToEndTriad(t *testing.T) {
	stack, sim := newSim(t, 2)
	w := workload.NewTriad(4, 600)
	err := sim.SubmitJob(jobsched.JobRequest{ID: "100", User: "alice", Nodes: 2}, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(900); err != nil {
		t.Fatal(err)
	}
	// The job ran and ended.
	fin := sim.Sched.Finished()
	if len(fin) != 1 || fin[0].Req.ID != "100" {
		t.Fatalf("finished %+v", fin)
	}
	// Metrics landed in the primary DB, tagged with the job.
	res, err := stack.DB.Select(tsdb.Query{
		Measurement: "likwid_mem_dp",
		Filter:      tsdb.TagFilter{"jobid": "100"},
		GroupByTags: []string{"hostname"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("per-host series %d", len(res))
	}
	// Bandwidth during the job matches the model: 4 cores x 6 GB/s.
	agg, err := stack.DB.Select(tsdb.Query{
		Measurement: "likwid_mem_dp",
		Fields:      []string{"memory_bandwidth_mbytes_s"},
		Filter:      tsdb.TagFilter{"jobid": "100", "hostname": "node01"},
		Agg:         tsdb.AggMax,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := agg[0].Rows[0].Values[0].FloatVal()
	want := 4 * 6000.0
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("bandwidth %v want ~%v", got, want)
	}
	// Per-user duplication happened.
	udb := stack.Store.DB("user_alice")
	if udb == nil || udb.PointCount() == 0 {
		t.Fatal("user database empty")
	}
	// Job start/end events stored.
	ev, err := stack.DB.Select(tsdb.Query{Measurement: "events", Filter: tsdb.TagFilter{"jobid": "100"}})
	if err != nil || len(ev) == 0 {
		t.Fatalf("events %v %v", ev, err)
	}
	// System metrics present and quiet after job end.
	cpuRes, err := stack.DB.Select(tsdb.Query{
		Measurement: "cpu",
		Fields:      []string{"percent"},
		Filter:      tsdb.TagFilter{"hostname": "node01"},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := cpuRes[0].Rows
	lastCPU := rows[len(rows)-1].Values[0].FloatVal()
	if lastCPU > 5 {
		t.Fatalf("node busy after job end: %v%%", lastCPU)
	}
}

func TestSimulationMiniMDAppMetrics(t *testing.T) {
	stack, sim := newSim(t, 1)
	mm := workload.NewMiniMD(4, 131072, 1500)
	if err := sim.SubmitJob(jobsched.JobRequest{ID: "mm1", User: "bob", Nodes: 1}, mm); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(mm.Duration() + 120); err != nil {
		t.Fatal(err)
	}
	// Application-level series tagged with the job by the router.
	res, err := stack.DB.Select(tsdb.Query{
		Measurement: "minimd",
		Filter:      tsdb.TagFilter{"jobid": "mm1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, s := range res {
		n += len(s.Rows)
	}
	if n != 15 { // 1500 iterations / 100
		t.Fatalf("minimd samples %d", n)
	}
	// All four Fig. 3 fields present.
	fields := stack.DB.FieldKeys("minimd")
	for _, want := range []string{"energy", "pressure", "runtime_100iter", "temperature"} {
		found := false
		for _, f := range fields {
			if f == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("field %q missing in %v", want, fields)
		}
	}
	// Start and end events from the CLI-equivalent.
	ev, err := stack.DB.Select(tsdb.Query{Measurement: "events", Filter: tsdb.TagFilter{"jobid": "mm1", "app": "minimd"}})
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, s := range ev {
		for _, r := range s.Rows {
			texts = append(texts, r.Values[0].StringVal())
		}
	}
	joined := strings.Join(texts, "|")
	if !strings.Contains(joined, "minimd start") || !strings.Contains(joined, "minimd end") {
		t.Fatalf("events %v", texts)
	}
}

func TestSimulationIdleBreakDetected(t *testing.T) {
	stack, sim := newSim(t, 4)
	// Fig. 4: 4-node job with a 15-minute break starting at minute 30.
	w := workload.NewIdleBreak(4, 5400, 1800, 2700)
	if err := sim.SubmitJob(jobsched.JobRequest{ID: "path1", User: "carol", Nodes: 4}, w); err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(6000); err != nil {
		t.Fatal(err)
	}
	job := sim.Sched.Finished()[0]
	rep, err := stack.Evaluator.Evaluate(sim.JobMeta(job))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pathological() {
		t.Fatal("idle break not detected")
	}
	// All four nodes show the low-flops violation of >= 10 minutes.
	nodes := map[string]bool{}
	for _, v := range rep.Violations {
		if v.Rule.Name == "low_flops" {
			nodes[v.Node] = true
			if v.Duration() < 10*time.Minute {
				t.Fatalf("violation too short: %v", v.Duration())
			}
		}
	}
	if len(nodes) != 4 {
		t.Fatalf("low_flops nodes %v", nodes)
	}
}

func TestSimulationQueueing(t *testing.T) {
	_, sim := newSim(t, 1)
	w1 := workload.NewDGEMM(4, 300)
	w2 := workload.NewDGEMM(4, 300)
	_ = sim.SubmitJob(jobsched.JobRequest{ID: "a", User: "u", Nodes: 1}, w1)
	_ = sim.SubmitJob(jobsched.JobRequest{ID: "b", User: "u", Nodes: 1}, w2)
	if err := sim.Run(900); err != nil {
		t.Fatal(err)
	}
	fin := sim.Sched.Finished()
	if len(fin) != 2 {
		t.Fatalf("finished %d", len(fin))
	}
	// b started after a ended.
	if fin[1].StartT < fin[0].EndT {
		t.Fatalf("overlap: %v < %v", fin[1].StartT, fin[0].EndT)
	}
}

func TestSimulationViewerIntegration(t *testing.T) {
	stack, sim := newSim(t, 2)
	w := workload.NewTriad(4, 1200)
	_ = sim.SubmitJob(jobsched.JobRequest{ID: "v1", User: "dan", Nodes: 2}, w)
	if err := sim.Run(600); err != nil { // job still running
		t.Fatal(err)
	}
	running := sim.Sched.Running()
	if len(running) != 1 {
		t.Fatalf("running %d", len(running))
	}
	meta := sim.JobMeta(running[0])
	meta.End = SimTime(sim.Now())
	d, err := stack.Agent.GenerateJobDashboard(meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Rows) < 4 {
		t.Fatalf("dashboard rows %d", len(d.Rows))
	}
	rep, err := stack.Evaluator.Evaluate(meta)
	if err != nil {
		t.Fatal(err)
	}
	table := rep.FormatTable()
	if !strings.Contains(table, "node01") || !strings.Contains(table, "node02") {
		t.Fatalf("table:\n%s", table)
	}
}

func TestSimulationPatternClassification(t *testing.T) {
	cases := []struct {
		name  string
		model workload.Model
		nodes int
		want  analysis.Pattern
	}{
		{"triad is bandwidth bound", workload.NewTriad(4, 1200), 1, analysis.PatternBandwidthBound},
		{"imbalance detected", &workload.LoadImbalance{Cores: 4, RuntimeSecs: 1200}, 2, analysis.PatternLoadImbalance},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			stack, sim, err := NewSimulatedStack(
				StackConfig{},
				SimConfig{Nodes: c.nodes, Topology: smallTopo(), CollectInterval: 30},
			)
			if err != nil {
				t.Fatal(err)
			}
			defer stack.Close()
			_ = sim.SubmitJob(jobsched.JobRequest{ID: "j", User: "u", Nodes: c.nodes}, c.model)
			if err := sim.Run(1500); err != nil {
				t.Fatal(err)
			}
			job := sim.Sched.Finished()[0]
			rep, err := stack.Evaluator.Evaluate(sim.JobMeta(job))
			if err != nil {
				t.Fatal(err)
			}
			if rep.Classification.Pattern != c.want {
				t.Fatalf("pattern %s want %s (path %v)",
					rep.Classification.Pattern, c.want, rep.Classification.Path)
			}
		})
	}
}

// TestStackDurableRestart: a stack built with DataDir survives its own
// restart — the router-ingested metrics written before Close (final
// checkpoint) answer queries after a fresh NewStack on the same
// directory, including the per-user duplicate databases.
func TestStackDurableRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := StackConfig{DataDir: dir, FsyncPolicy: "batch", PerUserDBs: true}
	stack, err := NewStack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pts := []lineproto.Point{
		{Measurement: "cpu", Tags: map[string]string{"hostname": "n1"},
			Fields: map[string]lineproto.Value{"percent": lineproto.Float(42)},
			Time:   time.Unix(1600000000, 0)},
		{Measurement: "cpu", Tags: map[string]string{"hostname": "n1"},
			Fields: map[string]lineproto.Value{"percent": lineproto.Float(43)},
			Time:   time.Unix(1600000001, 0)},
	}
	if err := stack.DB.WriteBatch(pts); err != nil {
		t.Fatal(err)
	}
	userDB, err := stack.Store.OpenDatabase("user_alice")
	if err != nil {
		t.Fatal(err)
	}
	if err := userDB.WriteBatch(pts[:1]); err != nil {
		t.Fatal(err)
	}
	wantPrimary := stack.DB.PointCount()
	wantUser := userDB.PointCount()
	if wantPrimary != 2 || wantUser != 1 {
		t.Fatalf("seed counts: primary %d, user %d", wantPrimary, wantUser)
	}
	if err := stack.Close(); err != nil {
		t.Fatal(err)
	}

	stack2, err := NewStack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer stack2.Close()
	if got := stack2.DB.PointCount(); got != wantPrimary {
		t.Fatalf("primary PointCount after restart = %d, want %d", got, wantPrimary)
	}
	user := stack2.Store.DB("user_alice")
	if user == nil {
		t.Fatal("per-user database not recovered")
	}
	if got := user.PointCount(); got != wantUser {
		t.Fatalf("user PointCount after restart = %d, want %d", got, wantUser)
	}
	res, err := stack2.DB.Select(tsdb.Query{Measurement: "cpu"})
	if err != nil || len(res) == 0 {
		t.Fatalf("Select after restart: %v, %v", res, err)
	}
}

func TestStackBadFsyncPolicy(t *testing.T) {
	if _, err := NewStack(StackConfig{DataDir: t.TempDir(), FsyncPolicy: "bogus"}); err == nil {
		t.Fatal("NewStack accepted a bogus fsync policy")
	}
}
