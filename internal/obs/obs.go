// Package obs is the self-observability layer of the LMS stack (DESIGN.md
// §10): process-local metrics exported in the Prometheus text exposition
// format, built on cheap atomics and nothing outside the standard library.
//
// A monitoring stack that serves heavy traffic must expose its own health
// through the same kind of interface it provides to others, so lms-db and
// lms-router each mount a Registry on GET /metrics. Instruments are the
// usual Prometheus trio:
//
//   - Counter: monotonically increasing uint64 (points ingested, drops),
//   - Gauge: a settable level (in-flight bytes),
//   - Histogram: cumulative buckets + sum + count (fsync and query latency),
//
// plus Func metrics that sample a callback at scrape time, which is how
// already-existing counters (Router.Stats, DB.QueryCacheStats, per-shard
// point counts) are exported without moving them: the component keeps its
// atomics, the registry reads them when asked.
//
// The package also owns the backpressure primitive, Gate: a bounded
// admission controller for the ingest hot paths. Handlers acquire
// (request, byte) budget before reading a body and release it when done;
// when the budget is exhausted the caller sheds load with 429 +
// Retry-After instead of letting goroutines and buffers pile up without
// bound — and every shed is counted, so overload is visible on /metrics
// rather than silent.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metric is one registered instrument; write renders its exposition block.
type metric interface {
	metricName() string
	write(w io.Writer)
}

// Registry holds a set of named instruments and renders them in the
// Prometheus text exposition format (version 0.0.4). Registration happens
// at wiring time; rendering may run concurrently with updates (all
// instrument state is atomic).
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	names   map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[m.metricName()] {
		panic(fmt.Sprintf("obs: duplicate metric %q", m.metricName()))
	}
	r.names[m.metricName()] = true
	r.metrics = append(r.metrics, m)
	sort.Slice(r.metrics, func(i, j int) bool {
		return r.metrics[i].metricName() < r.metrics[j].metricName()
	})
}

// Render writes every registered metric to w.
func (r *Registry) Render(w io.Writer) {
	r.mu.Lock()
	ms := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	for _, m := range ms {
		m.write(w)
	}
}

// Handler serves the registry as a Prometheus scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.Render(w)
	})
}

func writeHeader(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// L renders label pairs ("k1", "v1", "k2", "v2", ...) as a Prometheus
// label string `k1="v1",k2="v2"`, escaping '\', '"' and newlines in
// values. An empty list renders empty (no braces).
func L(kv ...string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: L needs key/value pairs")
	}
	var b strings.Builder
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		v := kv[i+1]
		for j := 0; j < len(v); j++ {
			switch v[j] {
			case '\\', '"':
				b.WriteByte('\\')
				b.WriteByte(v[j])
			case '\n':
				b.WriteString(`\n`)
			default:
				b.WriteByte(v[j])
			}
		}
		b.WriteByte('"')
	}
	return b.String()
}

func writeSample(w io.Writer, name, labels string, v float64) {
	if labels == "" {
		fmt.Fprintf(w, "%s %s\n", name, formatFloat(v))
		return
	}
	fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatFloat(v))
}

// formatFloat renders integers without an exponent or trailing zeros, so
// counters read naturally, and everything else in shortest form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// --- Counter ---------------------------------------------------------------

// Counter is a monotonically increasing value. The zero Counter must not be
// used; create through Registry.NewCounter.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// NewCounter registers a counter. By convention the name ends in _total.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) metricName() string { return c.name }

func (c *Counter) write(w io.Writer) {
	writeHeader(w, c.name, c.help, "counter")
	writeSample(w, c.name, "", float64(c.v.Load()))
}

// --- Gauge -----------------------------------------------------------------

// Gauge is a value that can go up and down, stored as int64.
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// NewGauge registers a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(g)
	return g
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to subtract).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) metricName() string { return g.name }

func (g *Gauge) write(w io.Writer) {
	writeHeader(w, g.name, g.help, "gauge")
	writeSample(w, g.name, "", float64(g.v.Load()))
}

// --- Histogram -------------------------------------------------------------

// DefLatencyBuckets are the default bucket upper bounds for latency
// histograms, in seconds: 100µs to 10s, roughly 1-2.5-5 per decade. WAL
// fsyncs land in the low milliseconds, cold aggregation queries in the
// tens; both fit without a resize knob.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket cumulative histogram. Observations are
// lock-free: one atomic add on the bucket, one on the count, a CAS loop on
// the float sum.
type Histogram struct {
	name, help string
	upper      []float64 // sorted upper bounds, +Inf implicit
	counts     []atomic.Uint64
	count      atomic.Uint64
	sumBits    atomic.Uint64
}

// NewHistogram registers a histogram over the given bucket upper bounds
// (sorted ascending; +Inf is implicit). nil selects DefLatencyBuckets.
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	h := &Histogram{
		name:   name,
		help:   help,
		upper:  append([]float64(nil), buckets...),
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
	r.register(h)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) metricName() string { return h.name }

func (h *Histogram) write(w io.Writer) {
	writeHeader(w, h.name, h.help, "histogram")
	cum := uint64(0)
	for i, ub := range h.upper {
		cum += h.counts[i].Load()
		writeSample(w, h.name+"_bucket", `le="`+formatFloat(ub)+`"`, float64(cum))
	}
	cum += h.counts[len(h.upper)].Load()
	writeSample(w, h.name+"_bucket", `le="+Inf"`, float64(cum))
	writeSample(w, h.name+"_sum", "", h.Sum())
	writeSample(w, h.name+"_count", "", float64(cum))
}

// --- Func metrics ----------------------------------------------------------

// FuncMetric samples a callback at scrape time, emitting zero or more
// labeled samples under one metric name. It is how state that already
// lives elsewhere (Router.Stats, DB.QueryCacheStats, per-shard point
// counts) is exported without duplicating it into instruments.
type funcMetric struct {
	name, help, typ string
	collect         func(emit func(labels string, v float64))
}

// NewFunc registers a callback-backed metric. typ is "counter" or "gauge".
// collect is called at scrape time and may emit any number of samples with
// distinct label strings (build them with L).
func (r *Registry) NewFunc(name, help, typ string, collect func(emit func(labels string, v float64))) {
	r.register(&funcMetric{name: name, help: help, typ: typ, collect: collect})
}

func (f *funcMetric) metricName() string { return f.name }

func (f *funcMetric) write(w io.Writer) {
	writeHeader(w, f.name, f.help, f.typ)
	f.collect(func(labels string, v float64) {
		writeSample(w, f.name, labels, v)
	})
}
