package collector

import (
	"fmt"
	"time"

	"repro/internal/lineproto"
	"repro/internal/proc"
)

// ProcFS abstracts the /proc snapshot source so the plugins run unchanged
// against the simulated proc.State or a real Linux /proc reader.
type ProcFS interface {
	LoadAvg() string
	Stat() string
	Meminfo() string
	NetDev() string
	Diskstats() string
}

// fval shortens field construction.
func fval(v float64) lineproto.Value { return lineproto.Float(v) }

// LoadPlugin emits the 1/5/15-minute load averages (measurement "load").
type LoadPlugin struct {
	FS ProcFS
}

// Name implements Plugin.
func (p *LoadPlugin) Name() string { return "load" }

// Collect implements Plugin.
func (p *LoadPlugin) Collect(now time.Time) ([]lineproto.Point, error) {
	v, err := proc.ParseLoadAvg(p.FS.LoadAvg())
	if err != nil {
		return nil, err
	}
	return []lineproto.Point{{
		Measurement: "load",
		Fields: map[string]lineproto.Value{
			"load1":    fval(v.Load1),
			"load5":    fval(v.Load5),
			"load15":   fval(v.Load15),
			"runnable": lineproto.Int(int64(v.Runnable)),
		},
		Time: now,
	}}, nil
}

// CPUPlugin emits CPU utilization percentages derived from consecutive
// /proc/stat snapshots (measurement "cpu": aggregate; "cpu_core": per core
// when PerCore is set).
type CPUPlugin struct {
	FS      ProcFS
	PerCore bool

	prev    proc.StatValues
	hasPrev bool
}

// Name implements Plugin.
func (p *CPUPlugin) Name() string { return "cpu" }

// Collect implements Plugin.
func (p *CPUPlugin) Collect(now time.Time) ([]lineproto.Point, error) {
	cur, err := proc.ParseStat(p.FS.Stat())
	if err != nil {
		return nil, err
	}
	defer func() { p.prev = cur; p.hasPrev = true }()
	if !p.hasPrev {
		return nil, nil // need two snapshots for a rate
	}
	pct := func(curT, prevT proc.CPUTimes) (user, system, idle float64, ok bool) {
		dTotal := float64(curT.Total() - prevT.Total())
		if dTotal <= 0 {
			return 0, 0, 0, false
		}
		user = 100 * float64(curT.User-prevT.User) / dTotal
		system = 100 * float64(curT.System-prevT.System) / dTotal
		idle = 100 * float64(curT.Idle-prevT.Idle) / dTotal
		return user, system, idle, true
	}
	var out []lineproto.Point
	if user, system, idle, ok := pct(cur.Aggregate, p.prev.Aggregate); ok {
		out = append(out, lineproto.Point{
			Measurement: "cpu",
			Fields: map[string]lineproto.Value{
				"user":    fval(user),
				"system":  fval(system),
				"idle":    fval(idle),
				"percent": fval(100 - idle),
			},
			Time: now,
		})
	}
	if p.PerCore && len(cur.CPUs) == len(p.prev.CPUs) {
		for i := range cur.CPUs {
			if user, system, idle, ok := pct(cur.CPUs[i], p.prev.CPUs[i]); ok {
				out = append(out, lineproto.Point{
					Measurement: "cpu_core",
					Tags:        map[string]string{"core": fmt.Sprint(i)},
					Fields: map[string]lineproto.Value{
						"user":    fval(user),
						"system":  fval(system),
						"idle":    fval(idle),
						"percent": fval(100 - idle),
					},
					Time: now,
				})
			}
		}
	}
	return out, nil
}

// MemoryPlugin emits allocated/free/total memory in KB (measurement
// "memory"), the "allocated memory size" metric of Sect. V.
type MemoryPlugin struct {
	FS ProcFS
}

// Name implements Plugin.
func (p *MemoryPlugin) Name() string { return "memory" }

// Collect implements Plugin.
func (p *MemoryPlugin) Collect(now time.Time) ([]lineproto.Point, error) {
	m, err := proc.ParseMeminfo(p.FS.Meminfo())
	if err != nil {
		return nil, err
	}
	return []lineproto.Point{{
		Measurement: "memory",
		Fields: map[string]lineproto.Value{
			"total_kb":     lineproto.Int(int64(m.TotalKB)),
			"free_kb":      lineproto.Int(int64(m.FreeKB)),
			"used_kb":      lineproto.Int(int64(m.UsedKB())),
			"used_percent": fval(100 * float64(m.UsedKB()) / float64(m.TotalKB)),
		},
		Time: now,
	}}, nil
}

// NetworkPlugin emits per-interface byte/packet rates from consecutive
// /proc/net/dev snapshots (measurement "network").
type NetworkPlugin struct {
	FS ProcFS
	// Interfaces restricts emission (nil = all except lo).
	Interfaces []string

	prev     map[string]proc.NetCounters
	prevTime time.Time
}

// Name implements Plugin.
func (p *NetworkPlugin) Name() string { return "network" }

func (p *NetworkPlugin) wants(iface string) bool {
	if len(p.Interfaces) == 0 {
		return iface != "lo"
	}
	for _, w := range p.Interfaces {
		if w == iface {
			return true
		}
	}
	return false
}

// Collect implements Plugin.
func (p *NetworkPlugin) Collect(now time.Time) ([]lineproto.Point, error) {
	cur, err := proc.ParseNetDev(p.FS.NetDev())
	if err != nil {
		return nil, err
	}
	defer func() { p.prev = cur; p.prevTime = now }()
	if p.prev == nil {
		return nil, nil
	}
	dt := now.Sub(p.prevTime).Seconds()
	if dt <= 0 {
		return nil, nil
	}
	var out []lineproto.Point
	for iface, c := range cur {
		if !p.wants(iface) {
			continue
		}
		prev, ok := p.prev[iface]
		if !ok {
			continue
		}
		out = append(out, lineproto.Point{
			Measurement: "network",
			Tags:        map[string]string{"interface": iface},
			Fields: map[string]lineproto.Value{
				"rx_bytes_per_s":   fval(float64(c.RxBytes-prev.RxBytes) / dt),
				"tx_bytes_per_s":   fval(float64(c.TxBytes-prev.TxBytes) / dt),
				"rx_packets_per_s": fval(float64(c.RxPackets-prev.RxPackets) / dt),
				"tx_packets_per_s": fval(float64(c.TxPackets-prev.TxPackets) / dt),
			},
			Time: now,
		})
	}
	return out, nil
}

// DiskPlugin emits per-device I/O rates from consecutive /proc/diskstats
// snapshots (measurement "disk"), the "file I/O" metric of Sect. V.
type DiskPlugin struct {
	FS ProcFS

	prev     map[string]proc.DiskCounters
	prevTime time.Time
}

// Name implements Plugin.
func (p *DiskPlugin) Name() string { return "disk" }

// Collect implements Plugin.
func (p *DiskPlugin) Collect(now time.Time) ([]lineproto.Point, error) {
	cur, err := proc.ParseDiskstats(p.FS.Diskstats())
	if err != nil {
		return nil, err
	}
	defer func() { p.prev = cur; p.prevTime = now }()
	if p.prev == nil {
		return nil, nil
	}
	dt := now.Sub(p.prevTime).Seconds()
	if dt <= 0 {
		return nil, nil
	}
	var out []lineproto.Point
	for dev, c := range cur {
		prev, ok := p.prev[dev]
		if !ok {
			continue
		}
		out = append(out, lineproto.Point{
			Measurement: "disk",
			Tags:        map[string]string{"device": dev},
			Fields: map[string]lineproto.Value{
				"read_bytes_per_s":  fval(float64(c.ReadSectors-prev.ReadSectors) * 512 / dt),
				"write_bytes_per_s": fval(float64(c.WriteSectors-prev.WriteSectors) * 512 / dt),
				"read_iops":         fval(float64(c.ReadIOs-prev.ReadIOs) / dt),
				"write_iops":        fval(float64(c.WriteIOs-prev.WriteIOs) / dt),
			},
			Time: now,
		})
	}
	return out, nil
}
