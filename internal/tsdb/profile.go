package tsdb

// Per-query execution profiling (DESIGN.md §14). A selectProf rides the
// context into SelectContext and collects what the two-phase engine
// actually did: how many runs phase 1 admitted vs pruned on time bounds,
// how many compressed chunks phase 2 decoded, how many points were
// examined, whether the result came from the query cache, and the wall
// time of each phase. EXPLAIN ANALYZE (influxql.go) attaches one,
// executes the statement normally, and renders the counters next to the
// untouched result rows; the cluster coordinator (internal/cluster)
// appends replica choice and per-node timings on top.
//
// When no profile is attached — every ordinary query — the cost is one
// zero-allocation context lookup (the key is a zero-size type) and nil
// pointer tests on the phase boundaries; the per-run counters in
// snapshotSelect sit behind a single predictable branch.

import (
	"context"
	"time"
)

// selectProf accumulates the execution profile of one SelectContext call.
// It is written by a single goroutine: snapshotSelect runs serially, and
// executeGroups pre-counts decode work before fanning out.
type selectProf struct {
	ShardsVisited  int   // lock domains consulted (1 per measurement)
	RunsScanned    int   // runs admitted into the snapshot
	RunsPruned     int   // runs skipped on time bounds
	ChunksDecoded  int   // compressed chunks decoded in phase 2
	PointsExamined int64 // rows snapshotted (raw) or resident in admitted chunks
	CacheHit       bool  // result served from the query cache

	CacheLookupNS int64 // phase: cache probe
	SnapshotNS    int64 // phase: run snapshot under the shard RLock
	ExecuteNS     int64 // phase: decode + aggregation fan-out
	TotalNS       int64 // whole SelectContext call
}

type profKey struct{}

// withProf attaches a profile collector to the context.
func withProf(ctx context.Context, p *selectProf) context.Context {
	return context.WithValue(ctx, profKey{}, p)
}

// profFrom returns the context's profile collector, or nil. Zero-size
// key, so the lookup allocates nothing on the hot path.
func profFrom(ctx context.Context) *selectProf {
	p, _ := ctx.Value(profKey{}).(*selectProf)
	return p
}

// sinceNS is the profiling clock: nanoseconds elapsed since t0.
func sinceNS(t0 time.Time) int64 { return int64(time.Since(t0)) }
