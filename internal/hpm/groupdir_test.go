package hpm

import (
	"os"
	"path/filepath"
	"testing"
)

const customGroupText = `SHORT Custom uops group

EVENTSET
FIXC0 INSTR_RETIRED_ANY
FIXC1 CPU_CLK_UNHALTED_CORE
PMC0 MEM_UOPS_RETIRED_LOADS

METRICS
Load MUOPS/s 1.0E-06*PMC0/time
CPI FIXC1/FIXC0

LONG
Site-local custom group.
`

func TestBuiltinGroupSet(t *testing.T) {
	gs := Builtin()
	if len(gs.Names()) != len(GroupNames()) {
		t.Fatalf("names %v", gs.Names())
	}
	g, err := gs.Lookup("FLOPS_DP")
	if err != nil || g.Name != "FLOPS_DP" {
		t.Fatal(err)
	}
	if _, err := gs.Lookup("NOPE"); err == nil {
		t.Fatal("unknown group accepted")
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "uops.txt"), []byte(customGroupText), 0o644); err != nil {
		t.Fatal(err)
	}
	// Non-group files are ignored.
	if err := os.WriteFile(filepath.Join(dir, "README.md"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	gs := Builtin()
	loaded, err := gs.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 || loaded[0] != "UOPS" {
		t.Fatalf("loaded %v", loaded)
	}
	g, err := gs.Lookup("UOPS")
	if err != nil {
		t.Fatal(err)
	}
	if g.Short != "Custom uops group" || len(g.Metrics) != 2 {
		t.Fatalf("%+v", g)
	}
	// Loaded groups measure like built-ins.
	m, _ := NewMachine(testTopo())
	_ = m.SetRates(0, EventRates{
		"INSTR_RETIRED_ANY":      1e9,
		"CPU_CLK_UNHALTED_CORE":  2e9,
		"MEM_UOPS_RETIRED_LOADS": 5e8,
	})
	sess, err := NewSessionGroup(m, g, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	_ = sess.Start()
	_ = m.Advance(2)
	_ = sess.Stop()
	res, err := sess.Result()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Metrics[0]["Load MUOPS/s"]; got != 500 {
		t.Fatalf("MUOPS %v", got)
	}
}

func TestLoadDirOverridesBuiltin(t *testing.T) {
	dir := t.TempDir()
	override := `SHORT Overridden

EVENTSET
FIXC0 INSTR_RETIRED_ANY

METRICS
MIPS 1.0E-06*FIXC0/time
`
	if err := os.WriteFile(filepath.Join(dir, "clock.txt"), []byte(override), 0o644); err != nil {
		t.Fatal(err)
	}
	gs := Builtin()
	if _, err := gs.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	g, _ := gs.Lookup("CLOCK")
	if g.Short != "Overridden" {
		t.Fatalf("override failed: %q", g.Short)
	}
	// The global built-in table is untouched.
	orig, _ := LookupGroup("CLOCK")
	if orig.Short == "Overridden" {
		t.Fatal("builtin table mutated")
	}
}

func TestLoadDirErrors(t *testing.T) {
	gs := Builtin()
	if _, err := gs.LoadDir("/nonexistent-dir-xyz"); err == nil {
		t.Fatal("missing dir accepted")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "broken.txt"), []byte("EVENTSET\nFIXC0 NO_SUCH\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := gs.LoadDir(dir); err == nil {
		t.Fatal("broken group accepted")
	}
}

func TestGroupSetZeroValue(t *testing.T) {
	var gs GroupSet
	if len(gs.Names()) != 0 {
		t.Fatal("zero set not empty")
	}
	g, _ := LookupGroup("CLOCK")
	gs.Add(g)
	if got, err := gs.Lookup("CLOCK"); err != nil || got != g {
		t.Fatal("add to zero set")
	}
}
