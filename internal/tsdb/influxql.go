package tsdb

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"
	"unicode"

	"repro/internal/lineproto"
)

// This file implements the InfluxQL subset that the LMS components issue:
//
//	SELECT <field>|<agg>(<field>)[, ...] FROM <measurement>
//	    [WHERE time >= <t> [AND time <= <t>] [AND <tag> = '<v>']...]
//	    [GROUP BY time(<interval>)[, <tag>...]] [LIMIT <n>]
//	SHOW DATABASES
//	SHOW MEASUREMENTS
//	SHOW FIELD KEYS FROM <measurement>
//	SHOW TAG KEYS FROM <measurement>
//	SHOW TAG VALUES [FROM <measurement>] WITH KEY = <key>
//	CREATE DATABASE <name>
//	DROP DATABASE <name>
//	EXPLAIN ANALYZE SELECT ...
//
// Timestamps accept bare integers with an optional unit suffix
// (ns, u, ms, s, m, h; default ns) or RFC3339 strings.

// Statement is a parsed InfluxQL statement.
type Statement struct {
	Kind    StmtKind
	Query   Query    // for SELECT
	Star    bool     // SELECT * (all fields)
	Target  string   // database name / measurement / tag key, by kind
	AggCols []AggCol // aggregation per selected column
}

// AggCol is one selected column with its aggregation.
type AggCol struct {
	Field string
	Agg   AggFunc
	Pct   float64
}

// StmtKind discriminates statement types.
type StmtKind int

// Statement kinds.
const (
	StmtSelect StmtKind = iota
	StmtShowDatabases
	StmtShowMeasurements
	StmtShowFieldKeys
	StmtShowTagKeys
	StmtShowTagValues
	StmtCreateDatabase
	StmtDropDatabase
	StmtExplainAnalyze
)

type lexer struct {
	s   string
	pos int
}

type token struct {
	kind tokenKind
	text string
}

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString // single-quoted
	tokNumber
	tokPunct // ( ) , ; = * < > <= >=
	tokDuration
)

func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.s) && unicode.IsSpace(rune(lx.s[lx.pos])) {
		lx.pos++
	}
	if lx.pos >= len(lx.s) {
		return token{kind: tokEOF}, nil
	}
	c := lx.s[lx.pos]
	switch {
	case c == '\'':
		lx.pos++
		var b strings.Builder
		for lx.pos < len(lx.s) && lx.s[lx.pos] != '\'' {
			if lx.s[lx.pos] == '\\' && lx.pos+1 < len(lx.s) {
				lx.pos++
			}
			b.WriteByte(lx.s[lx.pos])
			lx.pos++
		}
		if lx.pos >= len(lx.s) {
			return token{}, fmt.Errorf("unterminated string")
		}
		lx.pos++
		return token{kind: tokString, text: b.String()}, nil
	case c == '"':
		// Quoted identifier; backslash escapes the quote (and itself), so
		// every identifier the line protocol permits can be written.
		lx.pos++
		var b strings.Builder
		for lx.pos < len(lx.s) && lx.s[lx.pos] != '"' {
			if lx.s[lx.pos] == '\\' && lx.pos+1 < len(lx.s) {
				lx.pos++
			}
			b.WriteByte(lx.s[lx.pos])
			lx.pos++
		}
		if lx.pos >= len(lx.s) {
			return token{}, fmt.Errorf("unterminated identifier")
		}
		lx.pos++
		return token{kind: tokIdent, text: b.String()}, nil
	case c == '<' || c == '>':
		start := lx.pos
		lx.pos++
		if lx.pos < len(lx.s) && lx.s[lx.pos] == '=' {
			lx.pos++
		}
		return token{kind: tokPunct, text: lx.s[start:lx.pos]}, nil
	case strings.IndexByte("(),;=*", c) >= 0:
		lx.pos++
		return token{kind: tokPunct, text: string(c)}, nil
	case c >= '0' && c <= '9' || c == '-' || c == '+':
		start := lx.pos
		lx.pos++
		for lx.pos < len(lx.s) && (lx.s[lx.pos] >= '0' && lx.s[lx.pos] <= '9' || lx.s[lx.pos] == '.') {
			lx.pos++
		}
		numEnd := lx.pos
		for lx.pos < len(lx.s) && isIdentChar(lx.s[lx.pos]) {
			lx.pos++
		}
		if lx.pos > numEnd {
			return token{kind: tokDuration, text: lx.s[start:lx.pos]}, nil
		}
		return token{kind: tokNumber, text: lx.s[start:numEnd]}, nil
	case isIdentChar(c):
		start := lx.pos
		for lx.pos < len(lx.s) && isIdentChar(lx.s[lx.pos]) {
			lx.pos++
		}
		return token{kind: tokIdent, text: lx.s[start:lx.pos]}, nil
	default:
		return token{}, fmt.Errorf("unexpected byte %q", c)
	}
}

func isIdentChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '_' || c == '-' || c == '.' || c == '/' || c == ':'
}

type parser struct {
	lx   *lexer
	tok  token
	peek *token
}

func newParser(s string) (*parser, error) {
	p := &parser{lx: &lexer{s: s}}
	return p, p.advance()
}

func (p *parser) advance() error {
	if p.peek != nil {
		p.tok = *p.peek
		p.peek = nil
		return nil
	}
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) peekTok() (token, error) {
	if p.peek == nil {
		t, err := p.lx.next()
		if err != nil {
			return token{}, err
		}
		p.peek = &t
	}
	return *p.peek, nil
}

func (p *parser) keyword(words ...string) bool {
	if p.tok.kind != tokIdent {
		return false
	}
	for _, w := range words {
		if strings.EqualFold(p.tok.text, w) {
			return true
		}
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if p.tok.kind != tokPunct || p.tok.text != s {
		return fmt.Errorf("expected %q, got %q", s, p.tok.text)
	}
	return p.advance()
}

func (p *parser) expectIdent() (string, error) {
	if p.tok.kind != tokIdent {
		return "", fmt.Errorf("expected identifier, got %q", p.tok.text)
	}
	s := p.tok.text
	return s, p.advance()
}

// ParseQuery parses one or more ';'-separated statements.
func ParseQuery(s string) ([]Statement, error) {
	p, err := newParser(s)
	if err != nil {
		return nil, err
	}
	var stmts []Statement
	for {
		for p.tok.kind == tokPunct && p.tok.text == ";" {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
		if p.tok.kind == tokEOF {
			break
		}
		st, err := p.parseStatement()
		if err != nil {
			return nil, fmt.Errorf("tsdb: parse %q: %w", s, err)
		}
		stmts = append(stmts, st)
	}
	if len(stmts) == 0 {
		return nil, fmt.Errorf("tsdb: empty query")
	}
	return stmts, nil
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.keyword("SELECT"):
		return p.parseSelect()
	case p.keyword("SHOW"):
		return p.parseShow()
	case p.keyword("EXPLAIN"):
		if err := p.advance(); err != nil {
			return Statement{}, err
		}
		if !p.keyword("ANALYZE") {
			return Statement{}, fmt.Errorf("expected ANALYZE after EXPLAIN")
		}
		if err := p.advance(); err != nil {
			return Statement{}, err
		}
		if !p.keyword("SELECT") {
			return Statement{}, fmt.Errorf("expected SELECT after EXPLAIN ANALYZE")
		}
		st, err := p.parseSelect()
		if err != nil {
			return Statement{}, err
		}
		st.Kind = StmtExplainAnalyze
		return st, nil
	case p.keyword("CREATE"):
		if err := p.advance(); err != nil {
			return Statement{}, err
		}
		if !p.keyword("DATABASE") {
			return Statement{}, fmt.Errorf("expected DATABASE after CREATE")
		}
		if err := p.advance(); err != nil {
			return Statement{}, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return Statement{}, err
		}
		return Statement{Kind: StmtCreateDatabase, Target: name}, nil
	case p.keyword("DROP"):
		if err := p.advance(); err != nil {
			return Statement{}, err
		}
		if !p.keyword("DATABASE") {
			return Statement{}, fmt.Errorf("expected DATABASE after DROP")
		}
		if err := p.advance(); err != nil {
			return Statement{}, err
		}
		name, err := p.expectIdent()
		if err != nil {
			return Statement{}, err
		}
		return Statement{Kind: StmtDropDatabase, Target: name}, nil
	default:
		return Statement{}, fmt.Errorf("unknown statement start %q", p.tok.text)
	}
}

func (p *parser) parseShow() (Statement, error) {
	if err := p.advance(); err != nil {
		return Statement{}, err
	}
	switch {
	case p.keyword("DATABASES"):
		return Statement{Kind: StmtShowDatabases}, p.advance()
	case p.keyword("MEASUREMENTS"):
		return Statement{Kind: StmtShowMeasurements}, p.advance()
	case p.keyword("FIELD"), p.keyword("TAG"):
		isField := p.keyword("FIELD")
		if err := p.advance(); err != nil {
			return Statement{}, err
		}
		switch {
		case p.keyword("KEYS"):
			if err := p.advance(); err != nil {
				return Statement{}, err
			}
			st := Statement{Kind: StmtShowTagKeys}
			if isField {
				st.Kind = StmtShowFieldKeys
			}
			if p.keyword("FROM") {
				if err := p.advance(); err != nil {
					return Statement{}, err
				}
				m, err := p.expectIdent()
				if err != nil {
					return Statement{}, err
				}
				st.Query.Measurement = m
			}
			return st, nil
		case p.keyword("VALUES") && !isField:
			if err := p.advance(); err != nil {
				return Statement{}, err
			}
			st := Statement{Kind: StmtShowTagValues}
			if p.keyword("FROM") {
				if err := p.advance(); err != nil {
					return Statement{}, err
				}
				m, err := p.expectIdent()
				if err != nil {
					return Statement{}, err
				}
				st.Query.Measurement = m
			}
			if !p.keyword("WITH") {
				return Statement{}, fmt.Errorf("expected WITH KEY in SHOW TAG VALUES")
			}
			if err := p.advance(); err != nil {
				return Statement{}, err
			}
			if !p.keyword("KEY") {
				return Statement{}, fmt.Errorf("expected KEY after WITH")
			}
			if err := p.advance(); err != nil {
				return Statement{}, err
			}
			if err := p.expectPunct("="); err != nil {
				return Statement{}, err
			}
			key := p.tok.text
			if p.tok.kind != tokIdent && p.tok.kind != tokString {
				return Statement{}, fmt.Errorf("expected tag key, got %q", p.tok.text)
			}
			st.Target = key
			return st, p.advance()
		}
	}
	return Statement{}, fmt.Errorf("unsupported SHOW form near %q", p.tok.text)
}

func (p *parser) parseSelect() (Statement, error) {
	st := Statement{Kind: StmtSelect}
	if err := p.advance(); err != nil {
		return st, err
	}
	// Column list.
	for {
		if p.tok.kind == tokPunct && p.tok.text == "*" {
			st.Star = true
			if err := p.advance(); err != nil {
				return st, err
			}
		} else {
			name, err := p.expectIdent()
			if err != nil {
				return st, err
			}
			if p.tok.kind == tokPunct && p.tok.text == "(" {
				// Aggregation function call.
				fn := strings.ToLower(name)
				if !ValidAgg(fn) {
					return st, fmt.Errorf("unknown function %q", name)
				}
				if err := p.advance(); err != nil {
					return st, err
				}
				col := AggCol{Agg: AggFunc(fn)}
				if p.tok.kind == tokPunct && p.tok.text == "*" {
					col.Field = "*"
					if err := p.advance(); err != nil {
						return st, err
					}
				} else {
					f, err := p.expectIdent()
					if err != nil {
						return st, err
					}
					col.Field = f
				}
				if col.Agg == AggPercentile {
					if err := p.expectPunct(","); err != nil {
						return st, err
					}
					if p.tok.kind != tokNumber {
						return st, fmt.Errorf("percentile needs a numeric argument")
					}
					pctv, err := strconv.ParseFloat(p.tok.text, 64)
					if err != nil {
						return st, err
					}
					col.Pct = pctv
					if err := p.advance(); err != nil {
						return st, err
					}
				}
				if err := p.expectPunct(")"); err != nil {
					return st, err
				}
				st.AggCols = append(st.AggCols, col)
			} else {
				st.AggCols = append(st.AggCols, AggCol{Field: name})
			}
		}
		if p.tok.kind == tokPunct && p.tok.text == "," {
			if err := p.advance(); err != nil {
				return st, err
			}
			continue
		}
		break
	}
	if !p.keyword("FROM") {
		return st, fmt.Errorf("expected FROM, got %q", p.tok.text)
	}
	if err := p.advance(); err != nil {
		return st, err
	}
	m, err := p.expectIdent()
	if err != nil {
		return st, err
	}
	st.Query.Measurement = m

	if p.keyword("WHERE") {
		if err := p.advance(); err != nil {
			return st, err
		}
		for {
			if err := p.parseCondition(&st); err != nil {
				return st, err
			}
			if p.keyword("AND") {
				if err := p.advance(); err != nil {
					return st, err
				}
				continue
			}
			break
		}
	}
	if p.keyword("GROUP") {
		if err := p.advance(); err != nil {
			return st, err
		}
		if !p.keyword("BY") {
			return st, fmt.Errorf("expected BY after GROUP")
		}
		if err := p.advance(); err != nil {
			return st, err
		}
		for {
			switch {
			case p.keyword("time"):
				if err := p.advance(); err != nil {
					return st, err
				}
				if err := p.expectPunct("("); err != nil {
					return st, err
				}
				if p.tok.kind != tokDuration && p.tok.kind != tokNumber {
					return st, fmt.Errorf("expected duration in GROUP BY time(), got %q", p.tok.text)
				}
				d, err := parseDuration(p.tok.text)
				if err != nil {
					return st, err
				}
				st.Query.Every = d
				if err := p.advance(); err != nil {
					return st, err
				}
				if err := p.expectPunct(")"); err != nil {
					return st, err
				}
			case p.tok.kind == tokPunct && p.tok.text == "*":
				// GROUP BY * — group by every tag; resolved at execution.
				st.Query.GroupByTags = []string{"*"}
				if err := p.advance(); err != nil {
					return st, err
				}
			default:
				tag, err := p.expectIdent()
				if err != nil {
					return st, err
				}
				st.Query.GroupByTags = append(st.Query.GroupByTags, tag)
			}
			if p.tok.kind == tokPunct && p.tok.text == "," {
				if err := p.advance(); err != nil {
					return st, err
				}
				continue
			}
			break
		}
	}
	if p.keyword("LIMIT") {
		if err := p.advance(); err != nil {
			return st, err
		}
		if p.tok.kind != tokNumber {
			return st, fmt.Errorf("expected number after LIMIT")
		}
		n, err := strconv.Atoi(p.tok.text)
		if err != nil {
			return st, err
		}
		st.Query.Limit = n
		if err := p.advance(); err != nil {
			return st, err
		}
	}
	return st, nil
}

func (p *parser) parseCondition(st *Statement) error {
	if p.keyword("time") {
		if err := p.advance(); err != nil {
			return err
		}
		if p.tok.kind != tokPunct {
			return fmt.Errorf("expected comparison operator after time")
		}
		op := p.tok.text
		if err := p.advance(); err != nil {
			return err
		}
		t, err := p.parseTimeValue()
		if err != nil {
			return err
		}
		switch op {
		case ">", ">=":
			st.Query.Start = t
		case "<", "<=":
			st.Query.End = t
		case "=":
			st.Query.Start, st.Query.End = t, t
		default:
			return fmt.Errorf("unsupported time operator %q", op)
		}
		return nil
	}
	key, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct("="); err != nil {
		return err
	}
	if p.tok.kind != tokString {
		return fmt.Errorf("tag comparison needs a quoted string, got %q", p.tok.text)
	}
	if st.Query.Filter == nil {
		st.Query.Filter = TagFilter{}
	}
	st.Query.Filter[key] = p.tok.text
	return p.advance()
}

func (p *parser) parseTimeValue() (time.Time, error) {
	switch p.tok.kind {
	case tokNumber:
		ns, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return time.Time{}, err
		}
		return time.Unix(0, ns).UTC(), p.advance()
	case tokDuration:
		d, err := parseDuration(p.tok.text)
		if err != nil {
			return time.Time{}, err
		}
		return time.Unix(0, d.Nanoseconds()).UTC(), p.advance()
	case tokString:
		t, err := time.Parse(time.RFC3339Nano, p.tok.text)
		if err != nil {
			t, err = time.Parse("2006-01-02 15:04:05", p.tok.text)
			if err != nil {
				return time.Time{}, fmt.Errorf("bad time literal %q", p.tok.text)
			}
		}
		return t.UTC(), p.advance()
	default:
		return time.Time{}, fmt.Errorf("expected time value, got %q", p.tok.text)
	}
}

// parseDuration understands InfluxQL duration literals: 10s, 5m, 1h, 500ms,
// 100u, 42ns and bare integers (nanoseconds).
func parseDuration(s string) (time.Duration, error) {
	i := 0
	for i < len(s) && (s[i] >= '0' && s[i] <= '9' || s[i] == '.' || s[i] == '-' || s[i] == '+') {
		i++
	}
	numStr, unit := s[:i], s[i:]
	n, err := strconv.ParseFloat(numStr, 64)
	if err != nil {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	var mult time.Duration
	switch unit {
	case "", "ns":
		mult = time.Nanosecond
	case "u", "µ", "us":
		mult = time.Microsecond
	case "ms":
		mult = time.Millisecond
	case "s":
		mult = time.Second
	case "m":
		mult = time.Minute
	case "h":
		mult = time.Hour
	case "d":
		mult = 24 * time.Hour
	case "w":
		mult = 7 * 24 * time.Hour
	default:
		return 0, fmt.Errorf("bad duration unit %q", unit)
	}
	return time.Duration(n * float64(mult)), nil
}

// ExecOptions adjust how a statement executes and renders its result.
type ExecOptions struct {
	// Epoch selects integer timestamps in the given precision ("ns", "u",
	// "ms", "s", "m", "h") for SELECT results; "" renders RFC3339 strings.
	Epoch string
	// Limit, when > 0, caps the rows per result series of SELECTs on top of
	// any statement-level LIMIT (the Request.Limit of the query API).
	Limit int
}

// Execute runs a parsed statement against the store using db as the current
// database ("" allowed for SHOW DATABASES / CREATE / DROP). It is the
// context-free convenience form of ExecuteContext.
func Execute(store *Store, dbName string, st Statement) (ExecResult, error) {
	return ExecuteContext(context.Background(), store, dbName, st, ExecOptions{})
}

// ExecuteContext runs a parsed statement against the store. The context is
// observed by the Select engine between aggregation tasks, so a caller that
// goes away (HTTP client disconnect, cancelled dashboard refresh) stops
// burning worker-pool slots.
func ExecuteContext(ctx context.Context, store *Store, dbName string, st Statement, opts ExecOptions) (ExecResult, error) {
	switch st.Kind {
	case StmtCreateDatabase:
		// On a durable store a failed durable open must surface, not
		// silently hand back a memory-only database.
		if _, err := store.OpenDatabase(st.Target); err != nil {
			return ExecResult{}, err
		}
		return ExecResult{}, nil
	case StmtDropDatabase:
		store.DropDatabase(st.Target)
		return ExecResult{}, nil
	case StmtShowDatabases:
		res := ExecResult{Series: []ResultSeries{{Name: "databases", Columns: []string{"name"}}}}
		for _, n := range store.Databases() {
			res.Series[0].Values = append(res.Series[0].Values, []interface{}{n})
		}
		return res, nil
	}
	db := store.DB(dbName)
	if db == nil {
		return ExecResult{}, ErrNoDatabase
	}
	switch st.Kind {
	case StmtShowMeasurements:
		res := ExecResult{Series: []ResultSeries{{Name: "measurements", Columns: []string{"name"}}}}
		for _, n := range db.Measurements() {
			res.Series[0].Values = append(res.Series[0].Values, []interface{}{n})
		}
		return res, nil
	case StmtShowFieldKeys:
		res := ExecResult{Series: []ResultSeries{{Name: st.Query.Measurement, Columns: []string{"fieldKey"}}}}
		for _, n := range db.FieldKeys(st.Query.Measurement) {
			res.Series[0].Values = append(res.Series[0].Values, []interface{}{n})
		}
		return res, nil
	case StmtShowTagKeys:
		res := ExecResult{Series: []ResultSeries{{Name: st.Query.Measurement, Columns: []string{"tagKey"}}}}
		for _, n := range db.TagKeys(st.Query.Measurement) {
			res.Series[0].Values = append(res.Series[0].Values, []interface{}{n})
		}
		return res, nil
	case StmtShowTagValues:
		res := ExecResult{Series: []ResultSeries{{Name: st.Query.Measurement, Columns: []string{"key", "value"}}}}
		for _, v := range db.TagValues(st.Query.Measurement, st.Target) {
			res.Series[0].Values = append(res.Series[0].Values, []interface{}{st.Target, v})
		}
		return res, nil
	case StmtSelect:
		return executeSelect(ctx, db, st, opts)
	case StmtExplainAnalyze:
		return executeExplainAnalyze(ctx, db, st, opts)
	default:
		return ExecResult{}, fmt.Errorf("tsdb: unsupported statement kind %d", st.Kind)
	}
}

// ExecResult mirrors one entry of the InfluxDB JSON "results" array.
type ExecResult struct {
	Series []ResultSeries `json:"series,omitempty"`
	Err    string         `json:"error,omitempty"`
}

// ResultSeries is the JSON series representation: a name, optional tags, a
// column list (first column "time" for SELECTs) and value rows.
type ResultSeries struct {
	Name    string            `json:"name"`
	Tags    map[string]string `json:"tags,omitempty"`
	Columns []string          `json:"columns"`
	Values  [][]interface{}   `json:"values"`
}

func executeSelect(ctx context.Context, db *DB, st Statement, opts ExecOptions) (ExecResult, error) {
	epochDiv, err := epochMult(opts.Epoch)
	if err != nil {
		return ExecResult{}, err
	}
	q := st.Query
	if opts.Limit > 0 && (q.Limit == 0 || q.Limit > opts.Limit) {
		q.Limit = opts.Limit
	}
	// GROUP BY * expands to all tag keys of the measurement.
	if len(q.GroupByTags) == 1 && q.GroupByTags[0] == "*" {
		q.GroupByTags = db.TagKeys(q.Measurement)
	}
	var colNames []string
	if st.Star || len(st.AggCols) == 0 {
		q.Fields = nil // all
	} else {
		agg := AggNone
		pct := 0.0
		for _, c := range st.AggCols {
			if c.Agg != AggNone {
				agg = c.Agg
				pct = c.Pct
			}
		}
		for _, c := range st.AggCols {
			if c.Field == "*" {
				q.Fields = nil
				colNames = nil
				break
			}
			q.Fields = append(q.Fields, c.Field)
			if c.Agg != AggNone {
				colNames = append(colNames, string(c.Agg)+"_"+c.Field)
			} else {
				colNames = append(colNames, c.Field)
			}
		}
		q.Agg = agg
		q.Percentile = pct
	}
	series, err := db.SelectContext(ctx, q)
	if err == ErrNoMeasurement {
		return ExecResult{}, nil // InfluxDB returns an empty result here
	}
	if err != nil {
		return ExecResult{}, err
	}
	res := ExecResult{}
	for _, s := range series {
		rs := ResultSeries{Name: s.Name, Columns: append([]string{"time"}, s.Columns...)}
		if len(colNames) == len(s.Columns) && len(colNames) > 0 {
			rs.Columns = append([]string{"time"}, colNames...)
		}
		if len(s.Tags) > 0 {
			rs.Tags = s.Tags
		}
		for _, r := range s.Rows {
			vals := make([]interface{}, 0, len(r.Values)+1)
			if epochDiv > 0 {
				vals = append(vals, r.Time.UnixNano()/epochDiv)
			} else {
				vals = append(vals, r.Time.UTC().Format(time.RFC3339Nano))
			}
			for _, v := range r.Values {
				if v == nil {
					vals = append(vals, nil)
					continue
				}
				switch v.Kind() {
				case lineproto.KindInt:
					vals = append(vals, v.IntVal())
				case lineproto.KindBool:
					vals = append(vals, v.BoolVal())
				case lineproto.KindString:
					vals = append(vals, v.StringVal())
				default:
					vals = append(vals, v.FloatVal())
				}
			}
			rs.Values = append(rs.Values, vals)
		}
		res.Series = append(res.Series, rs)
	}
	return res, nil
}

// ExplainSeriesName is the result series carrying the execution profile of
// an EXPLAIN ANALYZE statement (DESIGN.md §14). The coordinator of a
// clustered query appends its own ExplainClusterSeriesName series with the
// routing profile; both prefix-match "explain_analyze" so clients can strip
// every profile series to recover the underlying SELECT's rows.
const (
	ExplainSeriesName        = "explain_analyze"
	ExplainClusterSeriesName = "explain_analyze_cluster"
)

// executeExplainAnalyze runs the wrapped SELECT with a profile attached and
// appends the profile as one extra series. The SELECT's own series are
// rendered exactly as a bare SELECT would render them.
func executeExplainAnalyze(ctx context.Context, db *DB, st Statement, opts ExecOptions) (ExecResult, error) {
	prof := &selectProf{}
	sel := st
	sel.Kind = StmtSelect
	res, err := executeSelect(withProf(ctx, prof), db, sel, opts)
	if err != nil {
		return ExecResult{}, err
	}
	res.Series = append(res.Series, prof.resultSeries())
	return res, nil
}

// resultSeries renders the profile as a metric/value series.
func (p *selectProf) resultSeries() ResultSeries {
	cache := "miss"
	if p.CacheHit {
		cache = "hit"
	}
	return ResultSeries{
		Name:    ExplainSeriesName,
		Columns: []string{"metric", "value"},
		Values: [][]interface{}{
			{"shards_visited", p.ShardsVisited},
			{"runs_scanned", p.RunsScanned},
			{"runs_pruned", p.RunsPruned},
			{"chunks_decoded", p.ChunksDecoded},
			{"points_examined", p.PointsExamined},
			{"cache", cache},
			{"phase_cache_lookup_ns", p.CacheLookupNS},
			{"phase_snapshot_ns", p.SnapshotNS},
			{"phase_execute_ns", p.ExecuteNS},
			{"phase_total_ns", p.TotalNS},
		},
	}
}
