package tsdb

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/lineproto"
	"repro/internal/obs"
)

// Handler exposes a Store over the InfluxDB HTTP API. The LMS router, the
// host agents (Diamond, cronjobs with curl) and the dashboard agent all talk
// to this interface (paper Fig. 1):
//
//	POST /write?db=<name>[&precision=ns|u|ms|s|m|h]   line-protocol body
//	GET|POST /query?db=<name>&q=<influxql>            JSON results
//	GET /ping                                         204 No Content
//
// Unknown databases are created on first write, which keeps the
// "integration effort as low as possible" goal: an agent can start pushing
// before an administrator provisions anything.
//
// SELECTs served through /query run on the lock-light two-phase engine
// behind DB.Select (select.go): a query holds its shard's read lock only
// while snapshotting the matching point runs, so dashboard polling through
// this handler no longer stalls agents writing to the same shard, and
// repeated identical queries inside the cache TTL are answered from the
// query-result cache (cache.go).
type Handler struct {
	store   *Store
	mux     *http.ServeMux
	metrics *Metrics

	// AutoCreate controls whether /write creates missing databases.
	AutoCreate bool

	// MaxBodyBytes caps the size of one /write body; larger requests are
	// refused with 413 Request Entity Too Large instead of being silently
	// truncated. 0 selects DefaultMaxBodyBytes. Set before serving.
	MaxBodyBytes int64

	// SlowQueryThreshold, when > 0, logs every /query request that takes
	// at least this long (and counts it in lms_slow_queries_total). Set
	// before serving.
	SlowQueryThreshold time.Duration

	// Logf receives slow-query log lines; nil selects the process-wide
	// leveled logger at warn level (obs.Warnf). Set before serving.
	Logf func(format string, args ...interface{})

	// Distributed, when set, coordinates /query across a cluster: each
	// statement is routed to the replicas owning its measurement and the
	// answers merged (internal/cluster). Requests carrying local=1 — sent
	// by peer coordinators — bypass it and answer from the local store, so
	// coordination never loops. /write is unaffected: the router places
	// writes on the ring before they reach a node. Set before serving.
	Distributed Querier

	// gate is the ingest admission controller (SetAdmission); nil admits
	// everything.
	gate *obs.Gate
}

// DefaultMaxBodyBytes is the /write body cap used when Handler.MaxBodyBytes
// (or router.Config.MaxBodyBytes) is zero.
const DefaultMaxBodyBytes int64 = 64 << 20

// NewHandler returns an HTTP handler serving the store, including its
// observability bundle on GET /metrics (Prometheus text format).
func NewHandler(store *Store) *Handler {
	h := &Handler{store: store, AutoCreate: true, metrics: store.Metrics()}
	mux := http.NewServeMux()
	mux.HandleFunc("/write", h.handleWrite)
	mux.HandleFunc("/query", h.handleQuery)
	mux.HandleFunc("/ping", h.handlePing)
	mux.Handle("/metrics", h.metrics.Handler())
	mux.HandleFunc("/debug/traces", h.handleTraces)
	h.mux = mux
	return h
}

// SetAdmission bounds the ingest path: at most maxReqs concurrent /write
// requests holding at most maxBytes summed body bytes are admitted; excess
// load is shed with 429 + Retry-After (and counted in
// lms_http_requests_shed_total) instead of piling up goroutines and
// buffers. Either bound <= 0 is unlimited. Call before serving.
func (h *Handler) SetAdmission(maxReqs, maxBytes int64) {
	if maxReqs <= 0 && maxBytes <= 0 {
		h.gate = nil
		h.metrics.setGate(nil)
		return
	}
	h.gate = obs.NewGate(maxReqs, maxBytes)
	h.metrics.setGate(h.gate)
}

func (h *Handler) maxBody() int64 {
	if h.MaxBodyBytes > 0 {
		return h.MaxBodyBytes
	}
	return DefaultMaxBodyBytes
}

func (h *Handler) logf(format string, args ...interface{}) {
	if h.Logf != nil {
		h.Logf(format, args...)
		return
	}
	obs.Warnf(format, args...)
}

// traceRing returns the store's completed-trace ring (Store.SetTraces),
// nil when tracing is off.
func (h *Handler) traceRing() *obs.TraceRing { return h.metrics.traces.Load() }

// handleTraces serves the completed-trace ring as JSON (DESIGN.md §14).
func (h *Handler) handleTraces(w http.ResponseWriter, r *http.Request) {
	ring := h.traceRing()
	if ring == nil {
		httpError(w, http.StatusNotFound, "tracing disabled")
		return
	}
	ring.ServeHTTP(w, r)
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

func (h *Handler) handlePing(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("X-Influxdb-Version", "lms-tsdb-1.0")
	w.WriteHeader(http.StatusNoContent)
}

func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// precisionMult returns the multiplier converting a timestamp in the given
// precision to nanoseconds.
func precisionMult(p string) (int64, error) {
	switch p {
	case "", "ns", "n":
		return 1, nil
	case "u", "µ":
		return int64(time.Microsecond), nil
	case "ms":
		return int64(time.Millisecond), nil
	case "s":
		return int64(time.Second), nil
	case "m":
		return int64(time.Minute), nil
	case "h":
		return int64(time.Hour), nil
	default:
		return 0, fmt.Errorf("invalid precision %q", p)
	}
}

// shedRequest refuses an ingest request the admission gate would not
// admit: 429 with a Retry-After hint, the standard backpressure signal
// for InfluxDB-protocol writers.
func shedRequest(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	httpError(w, http.StatusTooManyRequests, "ingest overloaded, retry later")
}

// readBodyLimited reads a request body of at most max bytes. A body larger
// than max reports tooLarge=true: reading on a truncating limit and
// parsing the prefix would silently drop the tail (a 64 MiB body cut at a
// line boundary parses cleanly!), so callers refuse with 413 instead.
func readBodyLimited(r io.Reader, max int64) (body []byte, tooLarge bool, err error) {
	body, err = io.ReadAll(io.LimitReader(r, max+1))
	if err != nil {
		return nil, false, err
	}
	if int64(len(body)) > max {
		return nil, true, nil
	}
	return body, false, nil
}

// scaleTimes converts point timestamps parsed in the given precision to
// nanoseconds, rejecting values whose scaled form overflows int64 — an
// unchecked multiply would silently wrap into a garbage time.
func scaleTimes(pts []lineproto.Point, mult int64) error {
	if mult == 1 {
		return nil
	}
	for i := range pts {
		if pts[i].Time.IsZero() {
			continue
		}
		ns := pts[i].Time.UnixNano()
		if ns > math.MaxInt64/mult || ns < math.MinInt64/mult {
			return fmt.Errorf("point %d: timestamp %d overflows the time range at this precision", i, ns)
		}
		pts[i].Time = time.Unix(0, ns*mult).UTC()
	}
	return nil
}

func (h *Handler) handleWrite(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	release, ok := h.gate.Acquire(r.ContentLength)
	if !ok {
		shedRequest(w)
		return
	}
	defer release()
	dbName := r.URL.Query().Get("db")
	if dbName == "" {
		httpError(w, http.StatusBadRequest, "missing db parameter")
		return
	}
	mult, err := precisionMult(r.URL.Query().Get("precision"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	db := h.store.DB(dbName)
	if db == nil {
		if !h.AutoCreate {
			httpError(w, http.StatusNotFound, "database %q not found", dbName)
			return
		}
		// OpenDatabase, not CreateDatabase: on a durable store a failed
		// durable open must fail the write, not silently degrade the
		// database to memory-only and keep acknowledging.
		var err error
		db, err = h.store.OpenDatabase(dbName)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "create database: %v", err)
			return
		}
	}
	body, tooLarge, err := readBodyLimited(r.Body, h.maxBody())
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if tooLarge {
		httpError(w, http.StatusRequestEntityTooLarge, "write body exceeds %d bytes", h.maxBody())
		return
	}
	pts, err := lineproto.Parse(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := scaleTimes(pts, mult); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Continue (or start) a trace: the router stamps X-Lms-Trace on its
	// fan-out, so this node's WAL/apply spans land under the same id.
	tr := h.traceRing().StartTrace("tsdb.write", r.Header.Get(obs.TraceHeader))
	sp := tr.Start("tsdb.http.write").Attr("db", dbName).AttrInt("points", int64(len(pts)))
	err = db.WriteBatchContext(obs.WithTrace(r.Context(), tr), pts)
	sp.End()
	tr.Finish()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	h.metrics.IngestBytes.Add(uint64(len(body)))
	w.WriteHeader(http.StatusNoContent)
}

// handleQuery serves GET|POST /query. Beyond db and q it understands the
// InfluxDB epoch parameter (integer timestamps in the given precision),
// chunked=true (one JSON document streamed per statement) and a limit
// parameter capping rows per result series. Statement execution runs under
// the request context, so a client that disconnects mid-aggregation stops
// the query engine instead of completing work nobody reads.
func (h *Handler) handleQuery(w http.ResponseWriter, r *http.Request) {
	var params url.Values
	switch r.Method {
	case http.MethodGet:
		params = r.URL.Query()
	case http.MethodPost:
		if err := r.ParseForm(); err != nil {
			httpError(w, http.StatusBadRequest, "parse form: %v", err)
			return
		}
		params = r.Form
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET or POST required")
		return
	}
	qstr := params.Get("q")
	if qstr == "" {
		httpError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	epoch := params.Get("epoch")
	if _, err := epochMult(epoch); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	limit := 0
	if ls := params.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "invalid limit %q", ls)
			return
		}
		limit = n
	}
	stmts, err := ParseQuery(qstr)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts := ExecOptions{Epoch: epoch, Limit: limit}
	dbName := params.Get("db")
	tr := h.traceRing().StartTrace("tsdb.query", r.Header.Get(obs.TraceHeader))
	rsp := tr.Start("tsdb.http.query").Attr("db", dbName).Attr("q", qstr)
	ctx := obs.WithTrace(r.Context(), tr)
	start := time.Now()
	defer func() {
		elapsed := time.Since(start)
		h.metrics.QuerySeconds.Observe(elapsed.Seconds())
		rsp.End()
		tr.Finish()
		if h.SlowQueryThreshold > 0 && elapsed >= h.SlowQueryThreshold {
			h.metrics.SlowQueries.Inc()
			h.logf("tsdb: slow query (%v >= %v) db=%q q=%q trace=%s", elapsed, h.SlowQueryThreshold, dbName, qstr, tr.ID())
		}
	}()
	w.Header().Set("Content-Type", "application/json")
	if h.Distributed != nil && params.Get("local") != "1" {
		h.serveDistributed(ctx, w, Request{
			Database:   dbName,
			Statements: stmts,
			Epoch:      epoch,
			Limit:      limit,
		}, params.Get("chunked") == "true")
		return
	}
	if params.Get("chunked") == "true" {
		// Chunked: one complete {"results":[...]} document per statement,
		// flushed as soon as it is computed. The client side merges the
		// stream back into one Response (readResponseStream) and checks it
		// received one result per statement; if execution dies mid-stream
		// a best-effort trailing error document turns the truncation into
		// an explicit per-statement error instead of a valid-looking short
		// stream.
		enc := json.NewEncoder(w)
		flusher, _ := w.(http.Flusher)
		if err := execStatements(ctx, h.store, dbName, stmts, opts, func(res ExecResult) error {
			if err := enc.Encode(Response{Results: []ExecResult{res}}); err != nil {
				return err
			}
			if flusher != nil {
				flusher.Flush()
			}
			return nil
		}); err != nil {
			_ = enc.Encode(Response{Results: []ExecResult{{Err: fmt.Sprintf("stream truncated: %v", err)}}})
		}
		return
	}
	resp := Response{}
	if err := execStatements(ctx, h.store, dbName, stmts, opts, func(res ExecResult) error {
		resp.Results = append(resp.Results, res)
		return nil
	}); err != nil {
		// Usually the client is gone; if the connection still works, the
		// error document below keeps the truncation from looking like a
		// complete (empty) result.
		_ = json.NewEncoder(w).Encode(Response{Results: []ExecResult{{Err: fmt.Sprintf("stream truncated: %v", err)}}})
		return
	}
	_ = json.NewEncoder(w).Encode(resp)
}

// serveDistributed answers /query through the cluster coordinator. The
// whole response is computed before the first byte is written: a replica
// set that is entirely unreachable becomes a 502 the client retries,
// instead of a half-streamed document. Chunked rendering then replays the
// computed results one document at a time, matching the local path's wire
// format.
func (h *Handler) serveDistributed(ctx context.Context, w http.ResponseWriter, req Request, chunked bool) {
	resp, err := h.Distributed.Query(ctx, req)
	if err != nil {
		httpError(w, http.StatusBadGateway, "cluster query: %v", err)
		return
	}
	if chunked {
		enc := json.NewEncoder(w)
		flusher, _ := w.(http.Flusher)
		for _, res := range resp.Results {
			if err := enc.Encode(Response{Results: []ExecResult{res}}); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		return
	}
	_ = json.NewEncoder(w).Encode(resp)
}

// Transport defaults of the package-level HTTP client. The zero
// http.DefaultClient has no timeout at all — one hung lms-db connection
// would wedge a dashboard worker forever — so Client defaults to a pooled
// transport with a bounded request timeout instead.
const (
	// DefaultClientTimeout bounds one HTTP request (dial + write + full
	// response body) of a Client using the default transport.
	DefaultClientTimeout = 15 * time.Second
	// DefaultQueryRetries is the number of times a failed idempotent query
	// is retried (on connection errors and 5xx responses).
	DefaultQueryRetries = 2
	// DefaultRetryBackoff is the first retry delay; it doubles per attempt.
	DefaultRetryBackoff = 100 * time.Millisecond
)

// defaultHTTPClient is shared by every Client without an explicit
// HTTPClient, so connections to the same lms-db are pooled process-wide —
// including every per-peer client the cluster coordinator builds, which
// is why the per-host limits are explicit: MaxConnsPerHost caps what a
// replication fan-out under load can open against one peer (excess
// requests queue on the pool instead of exhausting sockets), and
// MaxIdleConnsPerHost keeps enough of them warm that steady-state
// fan-out never redials.
var defaultHTTPClient = &http.Client{
	Timeout: DefaultClientTimeout,
	Transport: &http.Transport{
		MaxIdleConns:        128,
		MaxIdleConnsPerHost: 16,
		MaxConnsPerHost:     64,
		IdleConnTimeout:     90 * time.Second,
	},
}

// Client is an InfluxDB HTTP client used by the LMS components to write to
// and query a tsdb (or a real InfluxDB, or the router, which mimics this
// interface). It implements Querier, so every read-side component that
// takes a Querier can run against a remote lms-db by substituting a Client
// for the LocalQuerier — the deployment topology of the paper, where the
// web front-end and the metrics database live on different hosts.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8086".
	BaseURL string
	// Database is the default database for writes and queries (a
	// Request.Database overrides it per query).
	Database string
	// HTTPClient optionally overrides the pooled package default (which
	// carries DefaultClientTimeout).
	HTTPClient *http.Client
	// MaxRetries is the number of retries for failed idempotent queries;
	// 0 selects DefaultQueryRetries, negative disables retrying.
	MaxRetries int
	// RetryBackoff is the first retry delay, doubling per attempt; 0
	// selects DefaultRetryBackoff.
	RetryBackoff time.Duration
	// Params are extra URL parameters added to every /write and /query
	// request. The cluster coordinator marks its fan-out requests with
	// local=1 so a peer answers from its own store instead of
	// re-coordinating (loop prevention).
	Params url.Values
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return defaultHTTPClient
}

func (c *Client) retries() int {
	if c.MaxRetries == 0 {
		return DefaultQueryRetries
	}
	if c.MaxRetries < 0 {
		return 0
	}
	return c.MaxRetries
}

func (c *Client) backoff() time.Duration {
	if c.RetryBackoff <= 0 {
		return DefaultRetryBackoff
	}
	return c.RetryBackoff
}

// Ping checks connectivity.
func (c *Client) Ping() error {
	resp, err := c.httpClient().Get(c.BaseURL + "/ping")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("tsdb: ping status %d", resp.StatusCode)
	}
	return nil
}

// WriteBody posts a raw line-protocol payload.
func (c *Client) WriteBody(body []byte) error {
	return c.WriteBodyContext(context.Background(), body)
}

// WriteBodyContext posts a raw line-protocol payload under the context.
// A trace riding the context is propagated to the server via X-Lms-Trace
// and annotated with a client-side rpc.write span.
func (c *Client) WriteBodyContext(ctx context.Context, body []byte) error {
	vals := url.Values{}
	for k, vs := range c.Params {
		vals[k] = vs
	}
	vals.Set("db", c.Database)
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/write?"+vals.Encode(), readerOf(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "text/plain")
	tr := obs.TraceFrom(ctx)
	if id := tr.ID(); id != "" {
		hreq.Header.Set(obs.TraceHeader, id)
	}
	sp := tr.Start("rpc.write").Attr("peer", c.BaseURL).AttrInt("bytes", int64(len(body)))
	resp, err := c.httpClient().Do(hreq)
	sp.End()
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("tsdb: write status %d: %s", resp.StatusCode, msg)
	}
	return nil
}

// WritePoints encodes and posts a batch of points.
func (c *Client) WritePoints(pts []lineproto.Point) error {
	return c.WritePointsContext(context.Background(), pts)
}

// WritePointsContext encodes and posts a batch of points under the
// context (trace propagation included).
func (c *Client) WritePointsContext(ctx context.Context, pts []lineproto.Point) error {
	body, err := lineproto.Encode(pts)
	if err != nil {
		return err
	}
	return c.WriteBodyContext(ctx, body)
}

// Query implements Querier over the HTTP /query endpoint. Pre-parsed
// statements are serialized to canonical InfluxQL for the wire; parameters
// travel as properly encoded url.Values, so database names and query text
// containing '&', '+' or '%' survive intact. Transient failures (connection
// errors, 5xx responses) of this idempotent GET are retried with
// exponential backoff, honoring ctx.
func (c *Client) Query(ctx context.Context, req Request) (Response, error) {
	qtext := req.RawQuery
	expect := len(req.Statements)
	if expect > 0 {
		qtext = textOf(req.Statements)
	} else if stmts, err := ParseQuery(req.RawQuery); err == nil {
		// The server answers one result per statement; knowing the count
		// lets the client detect a truncated (chunked) stream. RawQuery
		// text our InfluxQL subset cannot parse may still be valid for a
		// real InfluxDB, so a parse failure just disables the check.
		expect = len(stmts)
	}
	dbName := req.Database
	if dbName == "" {
		dbName = c.Database
	}
	vals := url.Values{}
	for k, vs := range c.Params {
		vals[k] = vs
	}
	vals.Set("q", qtext)
	if dbName != "" {
		vals.Set("db", dbName)
	}
	if req.Epoch != "" {
		vals.Set("epoch", req.Epoch)
	}
	if req.Limit > 0 {
		vals.Set("limit", strconv.Itoa(req.Limit))
	}
	if req.Chunked {
		vals.Set("chunked", "true")
	}
	u := c.BaseURL + "/query?" + vals.Encode()

	var lastErr error
	backoff := c.backoff()
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return Response{}, ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		resp, retryable, err := c.queryOnce(ctx, u, expect)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !retryable || attempt >= c.retries() || ctx.Err() != nil {
			return Response{}, lastErr
		}
	}
}

// queryOnce performs one GET /query round-trip. retryable reports whether
// the failure is transient (network error, 5xx, truncated stream) rather
// than a caller mistake (4xx, malformed body). expect > 0 is the known
// statement count of the request: a 2xx body carrying fewer results is a
// truncated stream — a mid-flight failure of the chunked path leaves a
// valid-looking but short document sequence — and is surfaced (and
// retried) instead of silently merged.
func (c *Client) queryOnce(ctx context.Context, u string, expect int) (Response, bool, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return Response{}, false, err
	}
	tr := obs.TraceFrom(ctx)
	if id := tr.ID(); id != "" {
		hreq.Header.Set(obs.TraceHeader, id)
	}
	sp := tr.Start("rpc.query").Attr("peer", c.BaseURL)
	defer sp.End()
	hresp, err := c.httpClient().Do(hreq)
	if err != nil {
		return Response{}, true, err
	}
	defer hresp.Body.Close()
	if hresp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(hresp.Body, 512))
		return Response{}, hresp.StatusCode/100 == 5,
			fmt.Errorf("tsdb: query status %d: %s", hresp.StatusCode, msg)
	}
	resp, err := readResponseStream(hresp.Body)
	if err != nil {
		return Response{}, false, fmt.Errorf("tsdb: decode query response: %w", err)
	}
	if expect > 0 && len(resp.Results) < expect {
		return Response{}, true,
			fmt.Errorf("tsdb: truncated query response: %d statements produced %d results", expect, len(resp.Results))
	}
	return resp, false, nil
}

// readResponseStream decodes a /query body: either one JSON document or,
// for chunked responses, a stream of documents merged in order. Decoding is
// incremental (no ReadAll staging buffer) and numbers stay json.Number, so
// int64 values and nanosecond epoch timestamps above 2^53 keep full
// precision instead of rounding through float64.
func readResponseStream(r io.Reader) (Response, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	var out Response
	for {
		var chunk Response
		if err := dec.Decode(&chunk); err != nil {
			if err == io.EOF {
				break
			}
			return Response{}, err
		}
		out.Results = append(out.Results, chunk.Results...)
	}
	return out, nil
}

// QueryString runs raw InfluxQL against the client's default database and
// returns the per-statement results, with the first embedded statement
// error surfaced the way the pre-Querier API did. Convenience wrapper
// around Query for callers without a context.
func (c *Client) QueryString(q string) ([]ExecResult, error) {
	resp, err := c.Query(context.Background(), Request{RawQuery: q})
	if err != nil {
		return nil, err
	}
	return resp.Results, resp.Err()
}

// readerOf avoids importing bytes just for NewReader.
type byteReader struct {
	b []byte
	i int
}

func readerOf(b []byte) io.Reader { return &byteReader{b: b} }

func (r *byteReader) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}

// FloatValue converts an InfluxDB JSON value cell to float64: float64 and
// int64 from a LocalQuerier, json.Number off the HTTP wire, bools as 0/1
// (matching lineproto.Value.FloatVal). Strings and nil do not convert.
// Client-side counterpart of ParseTimestamp for the value columns.
func FloatValue(v interface{}) (float64, bool) {
	switch t := v.(type) {
	case float64:
		return t, true
	case int64:
		return float64(t), true
	case json.Number:
		f, err := t.Float64()
		return f, err == nil
	case bool:
		if t {
			return 1, true
		}
		return 0, true
	default:
		return 0, false
	}
}

// ParseTimestamp converts an InfluxDB JSON time column entry (RFC3339 string
// or integer nanoseconds) back to time.Time. Helper for client-side result
// processing in the dashboard and analysis components.
func ParseTimestamp(v interface{}) (time.Time, error) {
	switch t := v.(type) {
	case string:
		ts, err := time.Parse(time.RFC3339Nano, t)
		if err != nil {
			return time.Time{}, err
		}
		return ts, nil
	case float64:
		return time.Unix(0, int64(t)).UTC(), nil
	case int64:
		return time.Unix(0, t).UTC(), nil
	case json.Number:
		ns, err := strconv.ParseInt(string(t), 10, 64)
		if err != nil {
			return time.Time{}, err
		}
		return time.Unix(0, ns).UTC(), nil
	default:
		return time.Time{}, fmt.Errorf("tsdb: unsupported time column type %T", v)
	}
}
