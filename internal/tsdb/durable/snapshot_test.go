package durable

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/lineproto"
)

func sampleSnapshot() *Snapshot {
	return &Snapshot{Measurements: []Measurement{
		{
			Name: "cpu",
			Fields: []FieldSchema{
				{Name: "ctx", Kind: lineproto.KindInt},
				{Name: "user", Kind: lineproto.KindFloat},
			},
			Series: []Series{
				{
					Tags: map[string]string{"hostname": "node01", "cpu": "0"},
					Runs: []Run{
						{
							Ts: []int64{-50, 100, 100, 250},
							Cols: []Col{
								{Name: "user", Kind: lineproto.KindFloat, Floats: []float64{1.5, 2.5, 0, 4}},
								{Name: "ctx", Kind: lineproto.KindInt, Ints: []int64{-7, 0, 9, 0}, Present: []uint64{0b0111}},
							},
						},
						{
							Ts:   []int64{300},
							Cols: []Col{{Name: "user", Kind: lineproto.KindFloat, Floats: []float64{9}}},
						},
					},
				},
				{
					// Tag-less series with bool and mixed columns.
					Runs: []Run{{
						Ts: []int64{1, 2},
						Cols: []Col{
							{Name: "up", Kind: lineproto.KindBool, Ints: []int64{1, 0}},
							{Name: "mix", Kind: lineproto.KindFloat, Mixed: true,
								Vals: []lineproto.Value{lineproto.Float(1), lineproto.String("two")}},
						},
					}},
				},
			},
		},
		{
			Name:   "events",
			Fields: []FieldSchema{{Name: "msg", Kind: lineproto.KindString}},
			Strs:   []string{"started", "finished"},
			Series: []Series{{
				Tags: map[string]string{"hostname": "node02"},
				Runs: []Run{{
					Ts:   []int64{10, 20, 30},
					Cols: []Col{{Name: "msg", Kind: lineproto.KindString, StrIDs: []uint32{0, 1, 0}}},
				}},
			}},
		},
	}}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	want := sampleSnapshot()
	if err := WriteSnapshot(nil, dir, 7, want); err != nil {
		t.Fatal(err)
	}
	got, seg, err := LoadLatestSnapshot(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if seg != 7 {
		t.Fatalf("replay floor = %d, want 7", seg)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestSnapshotSupersededCheckpointsRemoved(t *testing.T) {
	dir := t.TempDir()
	if err := WriteSnapshot(nil, dir, 3, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(nil, dir, 9, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName(3))); !os.IsNotExist(err) {
		t.Fatal("superseded checkpoint still on disk")
	}
	_, seg, err := LoadLatestSnapshot(nil, dir)
	if err != nil || seg != 9 {
		t.Fatalf("latest = %d, %v; want 9", seg, err)
	}
}

// TestSnapshotCorruptFallsBackToOlder flips a byte in the newest
// checkpoint: recovery must skip it and use the older valid one instead
// of failing outright.
func TestSnapshotCorruptFallsBackToOlder(t *testing.T) {
	dir := t.TempDir()
	older := sampleSnapshot()
	if err := WriteSnapshot(nil, dir, 2, older); err != nil {
		t.Fatal(err)
	}
	// Re-create a newer checkpoint by hand so the older one survives.
	newer := sampleSnapshot()
	newer.Measurements = newer.Measurements[:1]
	tmp := t.TempDir()
	if err := WriteSnapshot(nil, tmp, 5, newer); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(tmp, snapshotName(5)))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(filepath.Join(dir, snapshotName(5)), data, 0o644); err != nil {
		t.Fatal(err)
	}

	got, seg, err := LoadLatestSnapshot(nil, dir)
	if err != nil {
		t.Fatal(err)
	}
	if seg != 2 {
		t.Fatalf("fell back to %d, want 2", seg)
	}
	if !reflect.DeepEqual(got, older) {
		t.Fatal("fallback snapshot mismatch")
	}
}

func TestSnapshotNoneFound(t *testing.T) {
	s, seg, err := LoadLatestSnapshot(nil, t.TempDir())
	if s != nil || seg != 0 || err != nil {
		t.Fatalf("LoadLatestSnapshot(empty) = %v, %d, %v", s, seg, err)
	}
	s, seg, err = LoadLatestSnapshot(nil, filepath.Join(t.TempDir(), "missing"))
	if s != nil || seg != 0 || err != nil {
		t.Fatalf("LoadLatestSnapshot(missing dir) = %v, %d, %v", s, seg, err)
	}
}
