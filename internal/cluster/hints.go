package cluster

// Hinted handoff (DESIGN.md §12). When a replica misses a write that was
// acknowledged at quorum, the coordinator parks the replica's share of the
// batch in a per-peer hint queue and replays it when the peer heals. The
// queue rides the durable WAL (internal/tsdb/durable): each hint is one
// CRC32-framed record holding the target database name and the batch in
// the WAL's own point-batch codec, so a coordinator restart recovers every
// outstanding hint exactly like lms-db recovers unacknowledged writes.
// Replay is at-least-once; the store's last-write-wins upsert on
// (series, timestamp) makes duplicate delivery convergent.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/url"
	"path/filepath"
	"sync"

	"repro/internal/lineproto"
	"repro/internal/tsdb/durable"
)

// hint is one parked sub-batch: the points a single peer missed, bound to
// their target database.
type hint struct {
	db    string
	pts   []lineproto.Point
	bytes int64 // encoded size, for the queue cap and byte gauge
}

// encodeHint frames one hint as a WAL record payload: uvarint-length
// database name followed by the durable point-batch encoding. nowNS
// resolves zero timestamps exactly like the ingest WAL does, so a replayed
// point is the point the acknowledged replicas stored.
func encodeHint(db string, pts []lineproto.Point, nowNS int64) []byte {
	dst := binary.AppendUvarint(nil, uint64(len(db)))
	dst = append(dst, db...)
	return durable.AppendBatch(dst, pts, nowNS)
}

func decodeHint(payload []byte) (hint, error) {
	n, sz := binary.Uvarint(payload)
	if sz <= 0 || uint64(len(payload)-sz) < n {
		return hint{}, errors.New("cluster: truncated hint payload")
	}
	db := string(payload[sz : sz+int(n)])
	pts, err := durable.DecodeBatch(payload[sz+int(n):])
	if err != nil {
		return hint{}, err
	}
	return hint{db: db, pts: pts, bytes: int64(len(payload))}, nil
}

// DefaultMaxHintBytes caps one peer's hint queue; past it new hints are
// dropped (and counted) rather than filling the coordinator's disk while a
// peer stays dead for days.
const DefaultMaxHintBytes int64 = 256 << 20

// hintQueue is the durable handoff queue of one peer.
type hintQueue struct {
	peer string
	dir  string // "" = memory-only (no HintsDir configured)

	mu      sync.Mutex
	wal     *durable.WAL // nil when memory-only or the log sealed
	pending []hint
	bytes   int64
	maxB    int64
}

// openHintQueue opens (or creates) the queue for peer under root,
// recovering pending hints from a previous run through the WAL replay
// callback. root == "" builds a memory-only queue.
func openHintQueue(root, peer string, maxBytes int64, opts durable.Options) (*hintQueue, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxHintBytes
	}
	q := &hintQueue{peer: peer, maxB: maxBytes}
	if root == "" {
		return q, nil
	}
	q.dir = filepath.Join(root, url.PathEscape(peer))
	w, err := durable.OpenWAL(q.dir, 0, opts, func(payload []byte) error {
		h, err := decodeHint(payload)
		if err != nil {
			return err
		}
		q.pending = append(q.pending, h)
		q.bytes += h.bytes
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: open hint queue for %s: %w", peer, err)
	}
	q.wal = w
	return q, nil
}

// enqueue parks one missed sub-batch. The hint is durable before enqueue
// returns (subject to the queue's fsync policy); a full queue or a sealed
// log rejects the hint with an error — the caller counts the drop, the
// write itself was already decided by quorum.
func (q *hintQueue) enqueue(db string, pts []lineproto.Point, nowNS int64) error {
	payload := encodeHint(db, pts, nowNS)
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.bytes+int64(len(payload)) > q.maxB {
		return fmt.Errorf("cluster: hint queue for %s full (%d bytes)", q.peer, q.bytes)
	}
	if q.wal != nil {
		if _, _, err := q.wal.Append(payload); err != nil {
			return fmt.Errorf("cluster: hint append for %s: %w", q.peer, err)
		}
	}
	h, err := decodeHint(payload)
	if err != nil {
		// Cannot happen for a payload we just encoded; decoding (rather than
		// keeping the caller's slice) makes the in-memory queue independent
		// of buffers the router reuses.
		return err
	}
	q.pending = append(q.pending, h)
	q.bytes += h.bytes
	return nil
}

// depth returns the queued batch count and byte size (the /metrics gauges).
func (q *hintQueue) depth() (batches int, bytes int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending), q.bytes
}

// drain replays pending hints in arrival order through send, stopping at
// the first failure (the peer is still unhealthy — back off and retry).
// replayed reports how many batches the peer accepted. When the queue
// empties, the WAL is rotated and its drained segments removed, so disk
// usage returns to zero after a heal. A crash mid-drain re-replays the
// already-delivered prefix on restart; delivery is at-least-once and the
// store's upsert makes it convergent.
func (q *hintQueue) drain(send func(db string, pts []lineproto.Point) error) (replayed int, err error) {
	for {
		q.mu.Lock()
		if len(q.pending) == 0 {
			if q.wal != nil {
				if seg, rerr := q.wal.Rotate(); rerr == nil {
					_ = q.wal.RemoveBelow(seg)
				}
			}
			q.mu.Unlock()
			return replayed, nil
		}
		h := q.pending[0]
		q.mu.Unlock()

		if err := send(h.db, h.pts); err != nil {
			return replayed, err
		}
		replayed++
		q.mu.Lock()
		q.pending = q.pending[1:]
		q.bytes -= h.bytes
		q.mu.Unlock()
	}
}

func (q *hintQueue) close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.wal == nil {
		return nil
	}
	err := q.wal.Close()
	q.wal = nil
	return err
}
