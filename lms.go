// Package lms is the public facade of the LIKWID Monitoring Stack (LMS)
// reproduction: a job-specific performance monitoring framework for small
// to medium sized commodity clusters, after
//
//	T. Röhl, J. Eitzinger, G. Hager, G. Wellein:
//	"LIKWID Monitoring Stack: A flexible framework enabling job specific
//	performance monitoring for the masses", IEEE CLUSTER 2017
//	(arXiv:1708.01476).
//
// The stack consists of loosely coupled components (paper Fig. 1), each of
// which also works standalone:
//
//   - a time-series database with an InfluxDB-compatible HTTP API
//     (internal/tsdb),
//   - the metrics router with the hostname-keyed tag store, job start/end
//     signals, per-user duplication and a ZeroMQ-style publisher
//     (internal/router, internal/pubsub),
//   - host agents collecting system metrics and LIKWID hardware performance
//     metrics (internal/collector, internal/proc, internal/hpm),
//   - the libusermetric application-level annotation library
//     (internal/usermetric),
//   - the Ganglia gmond pulling proxy (internal/gmond),
//   - the dashboard agent generating Grafana-model dashboards from
//     templates plus a web viewer (internal/dashboard),
//   - the analysis layer: threshold/timeout rules for pathological jobs and
//     the performance-pattern decision tree (internal/analysis),
//   - a batch scheduler and synthetic workload models that stand in for a
//     production cluster (internal/jobsched, internal/workload),
//
// wired together by internal/core. This package re-exports the composition
// entry points; see the examples/ directory for runnable scenarios and
// DESIGN.md for the substitution map (real hardware -> simulation).
//
// # Ingest scaling
//
// The write path is batch-oriented end to end. Every tsdb database is
// partitioned into measurement-hashed shards with per-shard locks
// (default: GOMAXPROCS shards; see tsdb.NewDBShards, tsdb.Store.ShardsPerDB
// and StackConfig.TSDBShards), so concurrent agents writing different
// measurements never serialize behind a single database mutex. Producers
// accumulate points into line-protocol batches (lineproto.Batch), the
// router enriches a batch and flushes it per destination database in one
// write, and tsdb.DB.WriteBatch commits each batch with one lock
// acquisition per touched shard. README.md describes the sharded store and
// the shard-count knob in more detail.
//
// # Query scaling
//
// The read path is lock-light and parallel (DESIGN.md §6). tsdb.DB.Select
// runs in two phases: a snapshot phase that holds the shard read lock only
// while collecting slice headers of the matching sorted, immutable point
// runs (with the time range and raw-query row limits pushed down into the
// snapshot), and an aggregation phase that buckets, groups and aggregates
// entirely outside any lock, fanning result groups out over a bounded
// worker pool (tsdb.DB.SetQueryWorkers, tsdb.Store.QueryWorkersPerDB,
// StackConfig.QueryWorkers). Per-run partial aggregates merge in a fixed
// order, so parallel results are byte-identical to the serial engine. A
// TTL'd query-result cache, invalidated per measurement on write, absorbs
// the dashboard viewer's repeated panel refreshes. README.md's "Query
// path" section and DESIGN.md §6 describe the design; EXPERIMENTS.md
// records the measured gains.
//
// # Query API and deployment topologies
//
// Every read-side consumer — the dashboard viewer, the analysis
// evaluator, the lms-dashboard and lms-analyze binaries — depends only on
// tsdb.Querier (DESIGN.md §7): tsdb.LocalQuerier executes pre-parsed
// statements directly against the in-process store, and tsdb.Client
// implements the same contract over the InfluxDB-compatible HTTP API with
// pooled transport, timeouts and retry/backoff. Substituting one for the
// other changes the deployment topology (everything in one process vs the
// paper's separate database, dashboard and analysis services on separate
// hosts via -db-url) but never the results: the equivalence suite holds
// both to byte-identical JSON. Contexts flow from the HTTP handlers
// through DB.SelectContext into the aggregation worker pool, so
// disconnected clients cancel their queries.
//
// # Durability
//
// The paper's stack persists metrics in InfluxDB so monitoring survives
// daemon restarts; a stack built with StackConfig.DataDir (or an lms-db
// started with -data-dir) does the same with the engine of DESIGN.md §9:
// every batch lands in a segmented, CRC32-framed write-ahead log before
// it is acknowledged (fsync policy per StackConfig.FsyncPolicy),
// checkpoints serialize the sealed columnar runs into immutable on-disk
// blocks, and startup recovers the newest checkpoint plus the WAL tail,
// truncating torn final records so exactly the acknowledged prefix comes
// back. Stack.Close (or SIGTERM to lms-db) flushes the log and writes a
// final checkpoint; retention deletes expired on-disk segments and
// blocks, with a per-DB background sweep aging out idle databases.
package lms

import (
	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/jobsched"
	"repro/internal/workload"
)

// Stack is an assembled LMS instance (database, router, publisher,
// dashboard agent, viewer, evaluator).
type Stack = core.Stack

// StackConfig configures NewStack.
type StackConfig = core.StackConfig

// NewStack builds a full monitoring stack.
func NewStack(cfg StackConfig) (*Stack, error) { return core.NewStack(cfg) }

// Simulation drives a simulated cluster against a stack.
type Simulation = core.Simulation

// SimConfig describes the simulated cluster.
type SimConfig = core.SimConfig

// NewSimulatedStack builds a stack plus a simulation sharing one clock.
func NewSimulatedStack(scfg StackConfig, simCfg SimConfig) (*Stack, *Simulation, error) {
	return core.NewSimulatedStack(scfg, simCfg)
}

// SimTime converts simulated seconds into stored timestamps.
var SimTime = core.SimTime

// JobRequest describes a batch job submission.
type JobRequest = jobsched.JobRequest

// JobMeta identifies a job for analysis and dashboards.
type JobMeta = analysis.JobMeta

// Workload models (see internal/workload for the full set).
type (
	// WorkloadModel is the per-node behaviour of a job.
	WorkloadModel = workload.Model
	// MiniMD is the Mantevo miniMD proxy application model (paper Fig. 3).
	MiniMD = workload.MiniMD
	// Triad is a bandwidth-bound streaming kernel.
	Triad = workload.Triad
	// DGEMM is a compute-bound kernel.
	DGEMM = workload.DGEMM
	// IdleBreak reproduces the Fig. 4 pathological job.
	IdleBreak = workload.IdleBreak
	// LoadImbalance reproduces the strong-scaling pathology.
	LoadImbalance = workload.LoadImbalance
)

// NewMiniMD constructs a miniMD run (cores per node, atoms, iterations).
var NewMiniMD = workload.NewMiniMD

// NewTriad constructs a streaming workload (cores per node, runtime).
var NewTriad = workload.NewTriad

// NewDGEMM constructs a compute workload (cores per node, runtime).
var NewDGEMM = workload.NewDGEMM

// NewIdleBreak constructs the Fig. 4 workload (cores, runtime, break
// start, break end in job seconds).
var NewIdleBreak = workload.NewIdleBreak
