package analysis

import "fmt"

// Pattern is one leaf of the performance-pattern systematic (Treibig,
// Hager, Wellein: "Performance patterns and hardware metrics on modern
// multicore processors", ref [17] of the paper), refined into a decision
// tree in the FEPA project [8]. The monitoring stack uses the tree to mark
// applications with significant optimization potential.
type Pattern string

// The pattern leaves of the decision tree.
const (
	PatternIdle           Pattern = "idle"
	PatternLoadImbalance  Pattern = "load_imbalance"
	PatternBandwidthBound Pattern = "bandwidth_saturation"
	PatternComputeBound   Pattern = "compute_bound"
	PatternLatencyBound   Pattern = "data_access_latency"
	PatternBranching      Pattern = "excess_branching"
	PatternBalanced       Pattern = "no_pathology"
)

// PatternInput is the metric vector the tree consumes, all values node-level
// aggregates over the job runtime.
type PatternInput struct {
	// CPUUtil is the mean CPU utilization fraction (0..1).
	CPUUtil float64
	// IPC is the mean instructions per cycle.
	IPC float64
	// DPMFlops is the node double-precision FP rate in MFLOP/s.
	DPMFlops float64
	// MemBWMBs is the node memory bandwidth in MBytes/s.
	MemBWMBs float64
	// PeakMemBWMBs is the achievable node bandwidth (for saturation).
	PeakMemBWMBs float64
	// PeakDPMFlops is the nominal node peak FP rate.
	PeakDPMFlops float64
	// Imbalance is the per-node (or per-core) work imbalance fraction
	// (see ImbalanceFrac).
	Imbalance float64
	// BranchMissRatio is mispredicted branches / branches.
	BranchMissRatio float64
}

// Thresholds of the decision tree. Exported so sites can tune them the way
// the FEPA tree is configurable.
var (
	IdleUtilThreshold        = 0.10
	ImbalanceThreshold       = 0.50
	BandwidthSaturation      = 0.70 // fraction of peak considered saturated
	ComputeSaturation        = 0.50 // fraction of FP peak considered compute bound
	LatencyIPCThreshold      = 0.60
	BranchMissRatioThreshold = 0.10
)

// Classification is the tree's verdict plus the decision path for
// explainability (administrators must understand why a job was flagged).
type Classification struct {
	Pattern Pattern
	// Path lists the decisions taken from root to leaf.
	Path []string
	// Advice is a one-line optimization hint for the user feedback view.
	Advice string
}

// Classify runs the decision tree. The tree is total: every input reaches
// a leaf.
func Classify(in PatternInput) Classification {
	var path []string
	step := func(format string, args ...interface{}) {
		path = append(path, fmt.Sprintf(format, args...))
	}

	if in.CPUUtil < IdleUtilThreshold {
		step("cpu utilization %.2f < %.2f -> idle", in.CPUUtil, IdleUtilThreshold)
		return Classification{Pattern: PatternIdle, Path: path,
			Advice: "job occupies nodes without using them; check for hangs, serial phases or wrong resource requests"}
	}
	step("cpu utilization %.2f >= %.2f", in.CPUUtil, IdleUtilThreshold)

	if in.Imbalance > ImbalanceThreshold {
		step("imbalance %.2f > %.2f -> load imbalance", in.Imbalance, ImbalanceThreshold)
		return Classification{Pattern: PatternLoadImbalance, Path: path,
			Advice: "work is unevenly distributed; check the domain decomposition and strong-scaling limits"}
	}
	step("imbalance %.2f <= %.2f", in.Imbalance, ImbalanceThreshold)

	if in.PeakMemBWMBs > 0 && in.MemBWMBs >= BandwidthSaturation*in.PeakMemBWMBs {
		step("memory bandwidth %.0f >= %.0f%% of peak -> bandwidth saturation",
			in.MemBWMBs, BandwidthSaturation*100)
		return Classification{Pattern: PatternBandwidthBound, Path: path,
			Advice: "memory bandwidth saturated; improve data locality, use cache blocking, or fewer cores per socket"}
	}
	step("memory bandwidth below saturation")

	if in.PeakDPMFlops > 0 && in.DPMFlops >= ComputeSaturation*in.PeakDPMFlops {
		step("FP rate %.0f >= %.0f%% of peak -> compute bound", in.DPMFlops, ComputeSaturation*100)
		return Classification{Pattern: PatternComputeBound, Path: path,
			Advice: "core execution is the bottleneck; the code runs efficiently, consider algorithmic improvements"}
	}
	step("FP rate below compute saturation")

	if in.BranchMissRatio > BranchMissRatioThreshold {
		step("branch misprediction ratio %.3f > %.3f -> excess branching",
			in.BranchMissRatio, BranchMissRatioThreshold)
		return Classification{Pattern: PatternBranching, Path: path,
			Advice: "high branch misprediction; restructure conditionals or sort data to regularize control flow"}
	}
	step("branch misprediction ratio ok")

	if in.IPC < LatencyIPCThreshold {
		step("IPC %.2f < %.2f with low bandwidth -> data access latency", in.IPC, LatencyIPCThreshold)
		return Classification{Pattern: PatternLatencyBound, Path: path,
			Advice: "low IPC without bandwidth saturation points to latency-bound data access; check strided or random access patterns"}
	}
	step("IPC %.2f >= %.2f -> no pathology", in.IPC, LatencyIPCThreshold)

	return Classification{Pattern: PatternBalanced, Path: path,
		Advice: "no dominant bottleneck detected"}
}
