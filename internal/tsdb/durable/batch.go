package durable

// Binary encoding of one point batch — the payload of one WAL record.
// The line protocol would work here too, but the WAL sits on the
// acknowledgement path of every write, so the format trades human
// readability for compactness and allocation-free encoding: length-
// prefixed strings, one type byte per field value, zigzag varints for
// integers and fixed 64-bit timestamps. The decoded batch must rebuild
// the exact points that were applied in memory, so timestamps are stored
// already resolved (a point that arrived without one is encoded with the
// server-assigned time).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/lineproto"
)

var errShortBatch = errors.New("durable: truncated batch payload")

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendFixed64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

// AppendBatch appends the binary encoding of pts to dst and returns the
// extended slice. Points whose Time is zero are encoded with nowNS, the
// server-side timestamp the caller is about to apply in memory, so a WAL
// replay reproduces the stored state exactly.
func AppendBatch(dst []byte, pts []lineproto.Point, nowNS int64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(pts)))
	var fieldBuf []lineproto.Field
	for i := range pts {
		p := &pts[i]
		dst = appendString(dst, p.Measurement)
		dst = binary.AppendUvarint(dst, uint64(len(p.Tags)))
		// Tag order does not matter for replay (series keys sort them),
		// but AppendFields gives fields a deterministic order for free.
		for k, v := range p.Tags {
			dst = appendString(dst, k)
			dst = appendString(dst, v)
		}
		fieldBuf = p.AppendFields(fieldBuf[:0])
		dst = binary.AppendUvarint(dst, uint64(len(fieldBuf)))
		for _, f := range fieldBuf {
			dst = appendString(dst, f.Key)
			dst = appendValue(dst, f.Value)
		}
		ns := nowNS
		if !p.Time.IsZero() {
			ns = p.Time.UnixNano()
		}
		dst = appendFixed64(dst, uint64(ns))
	}
	return dst
}

func appendValue(dst []byte, v lineproto.Value) []byte {
	dst = append(dst, byte(v.Kind()))
	switch v.Kind() {
	case lineproto.KindFloat:
		return appendFixed64(dst, math.Float64bits(v.FloatVal()))
	case lineproto.KindInt:
		return binary.AppendVarint(dst, v.IntVal())
	case lineproto.KindBool:
		if v.BoolVal() {
			return append(dst, 1)
		}
		return append(dst, 0)
	default: // KindString
		return appendString(dst, v.StringVal())
	}
}

// batchReader decodes the batch payload sequentially.
type batchReader struct {
	b []byte
}

func (r *batchReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, errShortBatch
	}
	r.b = r.b[n:]
	return v, nil
}

// count decodes an element count and validates it against the remaining
// payload: every element costs at least one byte, so a larger count is
// structurally impossible — bail before allocating, or a corrupt count
// that slipped past the CRC would panic the recovery path instead of
// letting it fall back.
func (r *batchReader) count() (int, error) {
	n, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if n > uint64(len(r.b)) {
		return 0, fmt.Errorf("durable: implausible count %d in %d-byte payload", n, len(r.b))
	}
	return int(n), nil
}

func (r *batchReader) varint() (int64, error) {
	v, n := binary.Varint(r.b)
	if n <= 0 {
		return 0, errShortBatch
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *batchReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if uint64(len(r.b)) < n {
		return "", errShortBatch
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s, nil
}

func (r *batchReader) fixed64() (uint64, error) {
	if len(r.b) < 8 {
		return 0, errShortBatch
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v, nil
}

func (r *batchReader) value() (lineproto.Value, error) {
	if len(r.b) < 1 {
		return lineproto.Value{}, errShortBatch
	}
	kind := lineproto.ValueKind(r.b[0])
	r.b = r.b[1:]
	switch kind {
	case lineproto.KindFloat:
		bits, err := r.fixed64()
		if err != nil {
			return lineproto.Value{}, err
		}
		return lineproto.Float(math.Float64frombits(bits)), nil
	case lineproto.KindInt:
		n, err := r.varint()
		if err != nil {
			return lineproto.Value{}, err
		}
		return lineproto.Int(n), nil
	case lineproto.KindBool:
		if len(r.b) < 1 {
			return lineproto.Value{}, errShortBatch
		}
		b := r.b[0]
		r.b = r.b[1:]
		return lineproto.Bool(b != 0), nil
	case lineproto.KindString:
		s, err := r.str()
		if err != nil {
			return lineproto.Value{}, err
		}
		return lineproto.String(s), nil
	default:
		return lineproto.Value{}, fmt.Errorf("durable: unknown value kind %d", kind)
	}
}

// DecodeBatch decodes one AppendBatch payload back into points. The
// payload sits behind a CRC32 frame, so a decode error means a format
// version mismatch or a software bug, not media corruption.
func DecodeBatch(payload []byte) ([]lineproto.Point, error) {
	r := &batchReader{b: payload}
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	pts := make([]lineproto.Point, 0, n)
	for i := 0; i < n; i++ {
		var p lineproto.Point
		if p.Measurement, err = r.str(); err != nil {
			return nil, err
		}
		ntags, err := r.count()
		if err != nil {
			return nil, err
		}
		if ntags > 0 {
			p.Tags = make(map[string]string, ntags)
			for j := 0; j < ntags; j++ {
				k, err := r.str()
				if err != nil {
					return nil, err
				}
				v, err := r.str()
				if err != nil {
					return nil, err
				}
				p.Tags[k] = v
			}
		}
		nfields, err := r.count()
		if err != nil {
			return nil, err
		}
		p.Fields = make(map[string]lineproto.Value, nfields)
		for j := 0; j < nfields; j++ {
			k, err := r.str()
			if err != nil {
				return nil, err
			}
			v, err := r.value()
			if err != nil {
				return nil, err
			}
			p.Fields[k] = v
		}
		ns, err := r.fixed64()
		if err != nil {
			return nil, err
		}
		p.Time = time.Unix(0, int64(ns)).UTC()
		pts = append(pts, p)
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("durable: %d trailing bytes after batch", len(r.b))
	}
	return pts, nil
}
