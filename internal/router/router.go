// Package router implements the LMS metrics router (paper Sect. III-B), the
// central component of the monitoring stack.
//
// The router mimics the HTTP interface of an InfluxDB database (so any host
// agent that can talk to InfluxDB can talk to the router) plus an endpoint
// for job start and end signals. It maintains a *tag store* keyed by
// hostname: when a job starts, the scheduler's signal carries tags (job id,
// user name, ...) that are attached to every metric and event arriving from
// the participating hosts for the duration of the job. All received metrics
// are forwarded to the database back-end; if configured, the router
// duplicates job metrics into a per-user database, and publishes metrics and
// meta information over the ZeroMQ-style pub/sub fabric for stream
// analyzers.
package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/lineproto"
	"repro/internal/obs"
	"repro/internal/pubsub"
	"repro/internal/tsdb"
)

// Sink receives forwarded point batches. Implemented by tsdb-backed local
// sinks and by the InfluxDB HTTP client, so the router can front either an
// in-process database or a remote one.
type Sink interface {
	WritePoints(pts []lineproto.Point) error
}

// ContextSink is the optional traced form of Sink. A sink implementing it
// receives the ingest context, so a trace riding it (DESIGN.md §14)
// reaches the storage engine — and, through the cluster write path or the
// HTTP client's X-Lms-Trace header, every replica. Plain Sinks keep
// working untraced; the pipeline type-asserts per flush.
type ContextSink interface {
	Sink
	WritePointsContext(ctx context.Context, pts []lineproto.Point) error
}

// writeSink flushes one batch through the traced interface when the sink
// offers it.
func writeSink(ctx context.Context, s Sink, pts []lineproto.Point) error {
	if cs, ok := s.(ContextSink); ok {
		return cs.WritePointsContext(ctx, pts)
	}
	return s.WritePoints(pts)
}

// LocalSink writes directly into an in-process tsdb database through its
// sharded batch entry point.
type LocalSink struct{ DB *tsdb.DB }

// WritePoints implements Sink by flushing the batch via DB.WriteBatch.
func (s LocalSink) WritePoints(pts []lineproto.Point) error {
	return s.DB.WriteBatch(pts)
}

// WritePointsContext implements ContextSink.
func (s LocalSink) WritePointsContext(ctx context.Context, pts []lineproto.Point) error {
	return s.DB.WriteBatchContext(ctx, pts)
}

// Config wires a Router.
type Config struct {
	// Primary is the main database sink (required).
	Primary Sink
	// UserSink returns the duplication sink for a user, or nil to skip
	// duplication for that user. Optional.
	UserSink func(user string) Sink
	// Publisher, if set, receives every forwarded batch on topic
	// "metrics/<measurement>" and every job signal on "meta/jobstart" /
	// "meta/jobend".
	Publisher *pubsub.Publisher
	// Now overrides the clock (tests); defaults to time.Now.
	Now func() time.Time
	// MaxHistory bounds the retained finished-job records (default 1000).
	MaxHistory int
	// MaxBodyBytes caps one /write body; larger payloads are refused with
	// 413 instead of being silently truncated. 0 selects
	// tsdb.DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// MaxInFlightRequests / MaxInFlightBytes bound the ingest admission
	// gate: beyond either budget /write sheds with 429 + Retry-After.
	// 0 means unlimited for that dimension.
	MaxInFlightRequests int64
	MaxInFlightBytes    int64
	// Traces, when set, records one trace per /write request (continuing
	// an upstream X-Lms-Trace id) and serves the completed ring on GET
	// /debug/traces. Nil keeps tracing off at zero cost.
	Traces *obs.TraceRing
}

// Router is the LMS metrics router. Create with New, expose with ServeHTTP.
type Router struct {
	cfg  Config
	mux  *http.ServeMux
	tags *TagStore
	jobs *JobRegistry
	gate *obs.Gate
	reg  *obs.Registry

	received  atomic.Int64
	forwarded atomic.Int64
	dropped   atomic.Int64
}

// New validates the configuration and builds a router.
func New(cfg Config) (*Router, error) {
	if cfg.Primary == nil {
		return nil, fmt.Errorf("router: Primary sink is required")
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.MaxHistory <= 0 {
		cfg.MaxHistory = 1000
	}
	r := &Router{
		cfg:  cfg,
		tags: NewTagStore(),
		jobs: NewJobRegistry(cfg.MaxHistory),
	}
	if cfg.MaxInFlightRequests > 0 || cfg.MaxInFlightBytes > 0 {
		r.gate = obs.NewGate(cfg.MaxInFlightRequests, cfg.MaxInFlightBytes)
	}
	r.reg = newRouterMetrics(r)
	mux := http.NewServeMux()
	mux.HandleFunc("/write", r.handleWrite)
	mux.HandleFunc("/ping", r.handlePing)
	mux.Handle("/metrics", r.reg.Handler())
	mux.HandleFunc("/debug/traces", r.handleTraces)
	mux.HandleFunc("/api/job/start", r.handleJobStart)
	mux.HandleFunc("/api/job/end", r.handleJobEnd)
	mux.HandleFunc("/api/jobs", r.handleJobs)
	mux.HandleFunc("/api/job/", r.handleJobInfo)
	r.mux = mux
	return r, nil
}

// newRouterMetrics builds the router's /metrics registry. The pipeline
// counters already exist as Router atomics (Stats), so everything is a
// Func metric sampled at scrape time.
func newRouterMetrics(r *Router) *obs.Registry {
	reg := obs.NewRegistry()
	reg.NewFunc("lms_router_received_points_total", "Points received by the router pipeline.", "counter",
		func(emit func(string, float64)) { emit("", float64(r.received.Load())) })
	reg.NewFunc("lms_router_forwarded_points_total", "Points forwarded to the primary sink.", "counter",
		func(emit func(string, float64)) { emit("", float64(r.forwarded.Load())) })
	reg.NewFunc("lms_router_dropped_points_total", "Points dropped on sink errors.", "counter",
		func(emit func(string, float64)) { emit("", float64(r.dropped.Load())) })
	reg.NewFunc("lms_router_shed_requests_total", "Ingest requests shed with 429 by the admission gate.", "counter",
		func(emit func(string, float64)) { emit("", float64(r.gate.Shed())) })
	reg.NewFunc("lms_router_inflight_requests", "Ingest requests currently admitted.", "gauge",
		func(emit func(string, float64)) {
			reqs, _ := r.gate.InFlight()
			emit("", float64(reqs))
		})
	reg.NewFunc("lms_router_inflight_bytes", "Ingest body bytes currently admitted.", "gauge",
		func(emit func(string, float64)) {
			_, bytes := r.gate.InFlight()
			emit("", float64(bytes))
		})
	reg.NewFunc("lms_router_jobs_running", "Jobs currently registered in the tag store.", "gauge",
		func(emit func(string, float64)) { emit("", float64(len(r.jobs.Running()))) })
	return reg
}

// Metrics exposes the router's observability registry (the /metrics
// document), for embedding deployments that mount it elsewhere.
func (r *Router) Metrics() *obs.Registry { return r.reg }

func (r *Router) maxBody() int64 {
	if r.cfg.MaxBodyBytes > 0 {
		return r.cfg.MaxBodyBytes
	}
	return tsdb.DefaultMaxBodyBytes
}

// ServeHTTP implements http.Handler.
func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	r.mux.ServeHTTP(w, req)
}

// Stats returns received, forwarded and dropped point counts.
func (r *Router) Stats() (received, forwarded, dropped int64) {
	return r.received.Load(), r.forwarded.Load(), r.dropped.Load()
}

// TagStore exposes the tag store (used by pulling proxies feeding the
// router in-process).
func (r *Router) TagStore() *TagStore { return r.tags }

// Jobs exposes the job registry (used by the dashboard agent).
func (r *Router) Jobs() *JobRegistry { return r.jobs }

func (r *Router) handlePing(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("X-Influxdb-Version", "lms-router-1.0")
	w.WriteHeader(http.StatusNoContent)
}

// handleTraces serves the router's completed-trace ring (DESIGN.md §14).
func (r *Router) handleTraces(w http.ResponseWriter, req *http.Request) {
	if r.cfg.Traces == nil {
		httpError(w, http.StatusNotFound, "tracing disabled")
		return
	}
	r.cfg.Traces.ServeHTTP(w, req)
}

func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (r *Router) handleWrite(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	release, ok := r.gate.Acquire(req.ContentLength)
	if !ok {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "ingest overloaded, retry later")
		return
	}
	defer release()
	// Read one byte past the cap so an oversized body is refused with 413
	// instead of silently truncated at a line boundary.
	max := r.maxBody()
	body, err := io.ReadAll(io.LimitReader(req.Body, max+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	if int64(len(body)) > max {
		httpError(w, http.StatusRequestEntityTooLarge, "write body exceeds %d bytes", max)
		return
	}
	// One trace per /write: the root of the distributed write path. The
	// trace id fans out with the batch (ContextSink → cluster → replicas),
	// so /debug/traces here shows the whole journey.
	tr := r.cfg.Traces.StartTrace("router.write", req.Header.Get(obs.TraceHeader))
	sp := tr.Start("router.http.write").AttrInt("bytes", int64(len(body)))
	err = r.IngestBatchContext(obs.WithTrace(req.Context(), tr), body)
	sp.End()
	tr.Finish()
	if err != nil {
		var perr *lineproto.ParseError
		if errors.As(err, &perr) {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// IngestBatch parses a line-protocol payload and runs the router pipeline on
// it. It is the batched entry point shared by the HTTP /write handler and by
// in-process producers (collection agents, libusermetric clients) whose
// flush callback delivers an encoded payload.
func (r *Router) IngestBatch(payload []byte) error {
	return r.IngestBatchContext(context.Background(), payload)
}

// IngestBatchContext is IngestBatch under a caller context (trace
// propagation into the sinks).
func (r *Router) IngestBatchContext(ctx context.Context, payload []byte) error {
	pts, err := lineproto.Parse(payload)
	if err != nil {
		return err
	}
	return r.IngestContext(ctx, pts)
}

// Ingest runs the router pipeline on a batch of points: timestamping,
// tag-store enrichment, per-destination batching, forwarding, per-user
// duplication and publishing. Points are accumulated per destination
// database and each accumulated batch is flushed with a single sink write,
// which the local sink hands to the store's sharded DB.WriteBatch.
func (r *Router) Ingest(pts []lineproto.Point) error {
	return r.IngestContext(context.Background(), pts)
}

// IngestContext is Ingest under a caller context: a trace riding it gets
// enrich/forward spans, and context-aware sinks carry it onward.
func (r *Router) IngestContext(ctx context.Context, pts []lineproto.Point) error {
	if len(pts) == 0 {
		return nil
	}
	tr := obs.TraceFrom(ctx)
	r.received.Add(int64(len(pts)))
	now := r.cfg.Now()

	// Enrich and accumulate. Points without a hostname tag pass through
	// untagged: the paper makes hostname the only mandatory tag, and the
	// router's hash table is keyed by it. The primary batch receives every
	// point; job points owned by a user are additionally accumulated into
	// that user's duplication batch.
	esp := tr.Start("router.enrich").AttrInt("points", int64(len(pts)))
	enriched := make([]lineproto.Point, 0, len(pts))
	perUser := map[string][]lineproto.Point{}
	for _, p := range pts {
		if p.Time.IsZero() {
			p.Time = now
		}
		host := p.Tags["hostname"]
		if host != "" {
			if jobTags, ok := r.tags.Lookup(host); ok {
				p = p.Clone()
				for k, v := range jobTags {
					if _, exists := p.Tags[k]; !exists {
						p.Tags[k] = v
					}
				}
				if user := jobTags["username"]; user != "" && r.cfg.UserSink != nil {
					perUser[user] = append(perUser[user], p)
				}
			}
		}
		enriched = append(enriched, p)
	}
	esp.End()
	fsp := tr.Start("router.forward").AttrInt("points", int64(len(enriched)))
	err := writeSink(ctx, r.cfg.Primary, enriched)
	fsp.End()
	if err != nil {
		r.dropped.Add(int64(len(enriched)))
		return fmt.Errorf("router: forward to primary: %w", err)
	}
	r.forwarded.Add(int64(len(enriched)))

	// Per-user duplication is best-effort: a broken user database must not
	// fail ingest into the primary store.
	for user, upts := range perUser {
		sink := r.cfg.UserSink(user)
		if sink == nil {
			continue
		}
		if err := writeSink(ctx, sink, upts); err != nil {
			r.dropped.Add(int64(len(upts)))
		}
	}

	if r.cfg.Publisher != nil {
		byMeasurement := map[string][]lineproto.Point{}
		for _, p := range enriched {
			byMeasurement[p.Measurement] = append(byMeasurement[p.Measurement], p)
		}
		for meas, mp := range byMeasurement {
			if payload, err := lineproto.Encode(mp); err == nil {
				r.cfg.Publisher.Publish("metrics/"+sanitizeTopic(meas), payload)
			}
		}
	}
	return nil
}

func sanitizeTopic(s string) string {
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\n' {
			return '_'
		}
		return r
	}, s)
}

// JobSignal is the JSON payload of the job start/end endpoints. The
// scheduler (or its prolog/epilog scripts) posts it at (de)allocation
// (paper Sect. III-A: "the compute nodes or a central management server
// must send signals at (de)allocation of a job").
type JobSignal struct {
	JobID string            `json:"jobid"`
	User  string            `json:"username,omitempty"`
	Nodes []string          `json:"nodes,omitempty"`
	Tags  map[string]string `json:"tags,omitempty"`
}

func decodeSignal(req *http.Request) (JobSignal, error) {
	var sig JobSignal
	body, err := io.ReadAll(io.LimitReader(req.Body, 1<<20))
	if err != nil {
		return sig, err
	}
	if err := json.Unmarshal(body, &sig); err != nil {
		return sig, err
	}
	if sig.JobID == "" {
		return sig, fmt.Errorf("missing jobid")
	}
	return sig, nil
}

func (r *Router) handleJobStart(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	sig, err := decodeSignal(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(sig.Nodes) == 0 {
		httpError(w, http.StatusBadRequest, "job start needs nodes")
		return
	}
	if err := r.JobStart(sig); err != nil {
		httpError(w, http.StatusConflict, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (r *Router) handleJobEnd(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	sig, err := decodeSignal(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := r.JobEnd(sig.JobID); err != nil {
		httpError(w, http.StatusNotFound, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// JobStart registers a job: its tags enter the tag store for every
// participating node, the signal is forwarded into the database as an
// annotation event, and meta information is published.
func (r *Router) JobStart(sig JobSignal) error {
	now := r.cfg.Now()
	tags := map[string]string{"jobid": sig.JobID}
	if sig.User != "" {
		tags["username"] = sig.User
	}
	for k, v := range sig.Tags {
		tags[k] = v
	}
	job := &Job{
		ID:    sig.JobID,
		User:  sig.User,
		Nodes: append([]string(nil), sig.Nodes...),
		Tags:  tags,
		Start: now,
	}
	if err := r.jobs.Start(job); err != nil {
		return err
	}
	for _, node := range sig.Nodes {
		r.tags.Set(node, tags)
	}
	r.writeEvent("jobstart", job, now)
	r.publishMeta("meta/jobstart", job)
	return nil
}

// JobEnd deregisters a job: tags leave the tag store, the end annotation is
// stored, meta information is published.
func (r *Router) JobEnd(jobID string) error {
	now := r.cfg.Now()
	job, err := r.jobs.End(jobID, now)
	if err != nil {
		return err
	}
	for _, node := range job.Nodes {
		r.tags.Remove(node, jobID)
	}
	r.writeEvent("jobend", job, now)
	r.publishMeta("meta/jobend", job)
	return nil
}

// writeEvent stores the signal as an annotation event in the primary
// database ("received signals are forwarded into the database to be used
// later as annotations in the graphs").
func (r *Router) writeEvent(kind string, job *Job, now time.Time) {
	nodes := strings.Join(job.Nodes, ",")
	ev := lineproto.Point{
		Measurement: "events",
		Tags:        map[string]string{"jobid": job.ID, "type": kind},
		Fields: map[string]lineproto.Value{
			"text": lineproto.String(fmt.Sprintf("%s job %s user %s nodes %s", kind, job.ID, job.User, nodes)),
		},
		Time: now,
	}
	if job.User != "" {
		ev.Tags["username"] = job.User
	}
	if err := r.cfg.Primary.WritePoints([]lineproto.Point{ev}); err == nil {
		r.forwarded.Add(1)
	} else {
		r.dropped.Add(1)
	}
}

func (r *Router) publishMeta(topic string, job *Job) {
	if r.cfg.Publisher == nil {
		return
	}
	payload, err := json.Marshal(job)
	if err != nil {
		return
	}
	r.cfg.Publisher.Publish(topic, payload)
}

func (r *Router) handleJobs(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	running := r.jobs.Running()
	sort.Slice(running, func(i, j int) bool { return running[i].ID < running[j].ID })
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(running)
}

func (r *Router) handleJobInfo(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	id := strings.TrimPrefix(req.URL.Path, "/api/job/")
	job, ok := r.jobs.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "job %q not found", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(job)
}
