// Command lms-db runs the standalone time-series database back-end of the
// LIKWID Monitoring Stack: an InfluxDB-compatible HTTP server
// (POST /write, GET /query, GET /ping).
//
// The store is shard-partitioned per database for multi-core ingest; the
// -shards flag overrides the lock-shard count (default: GOMAXPROCS).
//
// Usage:
//
//	lms-db -addr :8086 -db lms -retention 720h -shards 8
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"

	"repro/internal/cli"
	"repro/internal/tsdb"
)

func main() { cli.Main("lms-db", run) }

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("lms-db", flag.ContinueOnError)
	addr := fs.String("addr", ":8086", "listen address")
	dbName := fs.String("db", "lms", "database to create at startup")
	retention := fs.Duration("retention", 0, "drop data older than this (0 = keep forever)")
	shards := fs.Int("shards", 0, "lock shards per database (0 = GOMAXPROCS)")
	if done, err := cli.Parse(fs, args, stdout); done || err != nil {
		return err
	}

	store := tsdb.NewStore()
	store.ShardsPerDB = *shards
	db := store.CreateDatabase(*dbName)
	if *retention > 0 {
		db.SetRetention(*retention)
	}
	handler := tsdb.NewHandler(store)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "lms-db: serving database %q (%d shards) on %s\n",
		*dbName, db.ShardCount(), ln.Addr())
	return http.Serve(ln, handler)
}
