// Command lms-analyze performs the offline in-depth analysis of Sect. V on
// a job's monitoring data: the resource-utilization evaluation table
// (Fig. 2), pathological-interval detection with threshold + timeout rules
// (Fig. 4) and the performance-pattern decision tree.
//
// Data is loaded from a line-protocol dump file (as produced by recording
// the router stream or exporting from the database).
//
// Usage:
//
//	lms-analyze -data job.lp -job 42 -user alice -nodes node01,node02 \
//	            -start 2017-08-04T10:00:00Z -end 2017-08-04T12:00:00Z
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/cli"
	"repro/internal/lineproto"
	"repro/internal/tsdb"
)

// errPathological marks a successfully analyzed but flagged job; main turns
// it into exit status 3 so batch scripts can filter.
var errPathological = errors.New("job flagged as pathological")

func main() {
	err := run(os.Args[1:], os.Stdout)
	if errors.Is(err, errPathological) {
		os.Exit(3) // scriptable: non-zero for flagged jobs
	}
	cli.Exit("lms-analyze", err)
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("lms-analyze", flag.ContinueOnError)
	dataPath := fs.String("data", "", "line-protocol dump file (required)")
	jobID := fs.String("job", "", "job id (required)")
	user := fs.String("user", "", "job owner")
	nodesArg := fs.String("nodes", "", "comma-separated node list (default: hostnames found in the data)")
	startArg := fs.String("start", "", "job start (RFC3339; default: earliest sample)")
	endArg := fs.String("end", "", "job end (RFC3339; default: latest sample)")
	peakBW := fs.Float64("peak-membw", 60000, "achievable node memory bandwidth [MB/s] for the pattern tree")
	peakFlops := fs.Float64("peak-flops", 352000, "peak node DP rate [MFLOP/s] for the pattern tree")
	if done, err := cli.Parse(fs, args, stdout); done || err != nil {
		return err
	}

	if *dataPath == "" || *jobID == "" {
		return cli.UsageErr(fs, "-data and -job are required")
	}
	raw, err := os.ReadFile(*dataPath)
	if err != nil {
		return err
	}
	pts, err := lineproto.Parse(raw)
	if err != nil {
		return fmt.Errorf("parse %s: %w", *dataPath, err)
	}
	if len(pts) == 0 {
		return fmt.Errorf("no points in %s", *dataPath)
	}
	db := tsdb.NewDB("offline")
	if err := db.WriteBatch(pts); err != nil {
		return fmt.Errorf("load: %w", err)
	}

	var nodes []string
	if *nodesArg != "" {
		nodes = strings.Split(*nodesArg, ",")
	} else {
		nodes = db.TagValues("", "hostname")
	}
	if len(nodes) == 0 {
		return fmt.Errorf("no nodes given and no hostname tags found")
	}

	start, end := pts[0].Time, pts[0].Time
	for _, p := range pts {
		if p.Time.Before(start) {
			start = p.Time
		}
		if p.Time.After(end) {
			end = p.Time
		}
	}
	if *startArg != "" {
		if start, err = time.Parse(time.RFC3339, *startArg); err != nil {
			return fmt.Errorf("bad -start: %w", err)
		}
	}
	if *endArg != "" {
		if end, err = time.Parse(time.RFC3339, *endArg); err != nil {
			return fmt.Errorf("bad -end: %w", err)
		}
	}

	ev := &analysis.Evaluator{DB: db, PeakMemBWMBs: *peakBW, PeakDPMFlops: *peakFlops}
	rep, err := ev.Evaluate(analysis.JobMeta{
		ID: *jobID, User: *user, Nodes: nodes, Start: start, End: end,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, rep.FormatTable())
	if rep.Pathological() {
		return errPathological
	}
	return nil
}
