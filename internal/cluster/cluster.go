package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fsys"
	"repro/internal/lineproto"
	"repro/internal/obs"
	"repro/internal/tsdb"
	"repro/internal/tsdb/durable"
)

// Config describes one process's view of the cluster. Every process —
// each lms-db node and every router — is handed the same Peers list, so
// all of them agree on placement without coordination traffic.
type Config struct {
	// Peers lists the HTTP base URLs of every lms-db node in the cluster,
	// self included. The URL doubles as the node id on the ring.
	Peers []string

	// Self is this process's own entry in Peers, or "" for a pure
	// coordinator (the router) that owns no ring slice. A node's requests
	// to itself short-circuit to SelfStore instead of looping through HTTP.
	Self string

	// SelfStore is the local store backing Self; required iff Self != "".
	SelfStore *tsdb.Store

	// Replication is R, the number of replicas owning each (db,
	// measurement). 0 selects DefaultReplication, values above the node
	// count are capped.
	Replication int

	// WriteQuorum is W, the number of replica acknowledgements a write
	// needs before it is acknowledged upstream. 0 selects 1; values above
	// Replication are capped. W < R is what hinted handoff absorbs: the
	// write acks while a replica is down, the missed sub-batch replays on
	// heal.
	WriteQuorum int

	// VirtualNodes per ring member (0 = DefaultVirtualNodes).
	VirtualNodes int

	// HintsDir is the root directory of the durable hinted-handoff queues
	// (one WAL per peer underneath). Empty keeps hints in memory only — a
	// coordinator crash then loses them, exactly like a memory-only lms-db
	// loses unflushed points.
	HintsDir string

	// HintFsync is the fsync policy of the hint WALs (default: per batch).
	HintFsync durable.FsyncPolicy

	// HintFS overrides the filesystem the hint queues run on; nil selects
	// the real one. Chaos tests inject internal/faultfs here.
	HintFS fsys.FS

	// MaxHintBytes caps each peer's hint queue (0 = DefaultMaxHintBytes).
	MaxHintBytes int64

	// DrainInterval is the base retry delay of the hint drain loop; it
	// doubles per consecutive failure up to 16x. 0 selects 250ms.
	DrainInterval time.Duration

	// HTTPClient overrides the pooled package-default client used for all
	// peer traffic (tests shorten its timeout). Nil shares tsdb's default
	// transport, whose MaxConnsPerHost bounds the fan-out socket load.
	HTTPClient *http.Client

	// Logf receives cluster log lines; nil selects the process-wide
	// leveled logger (obs.Warnf) — cluster lines are all degradation
	// reports (stalled drains, dropped hints), warnings by nature.
	Logf func(format string, args ...interface{})
}

// DefaultReplication is R when Config.Replication is zero: two copies of
// every measurement, the smallest value that survives one node down.
const DefaultReplication = 2

const defaultDrainInterval = 250 * time.Millisecond

// node is one ring member as seen from this process.
type node struct {
	id    string
	local *tsdb.Store // non-nil only for self
	hints *hintQueue  // nil for self (a node never hints to itself)

	// Per-peer replicated-write accounting (the /metrics counters).
	batchesOK   atomic.Uint64
	batchesErr  atomic.Uint64
	pointsOK    atomic.Uint64
	pointsErr   atomic.Uint64
	replayed    atomic.Uint64 // hint batches the healed peer accepted
	hintDropped atomic.Uint64 // hints lost to a full/failed queue
}

// Cluster is the clustered view of the database: a ring, one node handle
// per member, the replicated write path (writer.go) and the distributed
// querier (querier.go).
type Cluster struct {
	cfg  Config
	ring *Ring
	// nodes is keyed by ring id; iteration always goes through ring.Nodes()
	// for deterministic order.
	nodes map[string]*node
	self  *node

	httpc *http.Client

	ensureMu sync.Mutex
	ensured  map[string]map[string]bool // db -> node id -> created

	readFailovers  atomic.Uint64
	quorumFailures atomic.Uint64
	fanout         atomic.Pointer[obs.Histogram]

	drainKick chan struct{}
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// New builds the cluster view and recovers any hinted-handoff queues left
// under HintsDir by a previous run; recovered hints start draining
// immediately.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: no peers configured")
	}
	if cfg.Self != "" && cfg.SelfStore == nil {
		return nil, fmt.Errorf("cluster: Self %q set without SelfStore", cfg.Self)
	}
	ring := NewRing(cfg.Peers, cfg.VirtualNodes)
	if cfg.Replication <= 0 {
		cfg.Replication = DefaultReplication
	}
	if cfg.Replication > len(ring.Nodes()) {
		cfg.Replication = len(ring.Nodes())
	}
	if cfg.WriteQuorum <= 0 {
		cfg.WriteQuorum = 1
	}
	if cfg.WriteQuorum > cfg.Replication {
		cfg.WriteQuorum = cfg.Replication
	}
	if cfg.DrainInterval <= 0 {
		cfg.DrainInterval = defaultDrainInterval
	}
	c := &Cluster{
		cfg:       cfg,
		ring:      ring,
		nodes:     make(map[string]*node, len(ring.Nodes())),
		httpc:     cfg.HTTPClient,
		ensured:   make(map[string]map[string]bool),
		drainKick: make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	foundSelf := cfg.Self == ""
	hintOpts := durable.Options{Fsync: cfg.HintFsync, FS: cfg.HintFS}
	for _, id := range ring.Nodes() {
		n := &node{id: id}
		if id == cfg.Self {
			n.local = cfg.SelfStore
			c.self = n
			foundSelf = true
		} else {
			q, err := openHintQueue(cfg.HintsDir, id, cfg.MaxHintBytes, hintOpts)
			if err != nil {
				c.closeQueues()
				return nil, err
			}
			n.hints = q
		}
		c.nodes[id] = n
	}
	if !foundSelf {
		c.closeQueues()
		return nil, fmt.Errorf("cluster: self %q is not in the peer list", cfg.Self)
	}
	c.wg.Add(1)
	go c.drainLoop()
	return c, nil
}

// Ring exposes the placement ring (tests and the ring-generation gauge).
func (c *Cluster) Ring() *Ring { return c.ring }

// Replication returns the effective R after capping.
func (c *Cluster) Replication() int { return c.cfg.Replication }

// WriteQuorum returns the effective W after capping.
func (c *Cluster) WriteQuorum() int { return c.cfg.WriteQuorum }

func (c *Cluster) logf(format string, args ...interface{}) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
		return
	}
	obs.Warnf(format, args...)
}

// clientFor returns a write/query client for a peer bound to db. The
// struct is cheap; the connection pool behind it is shared (Config.
// HTTPClient or tsdb's package-level transport), so fan-out to the same
// peer reuses sockets instead of opening one per (db, request). local=1
// marks the request as already coordinated: the peer answers from its own
// store instead of fanning out again (loop prevention).
func (c *Cluster) clientFor(peer, db string) *tsdb.Client {
	return &tsdb.Client{
		BaseURL:    peer,
		Database:   db,
		HTTPClient: c.httpc,
		// The coordinator owns retries: it fails over to the next replica
		// instead of stalling on per-request backoff against a dead peer.
		MaxRetries: -1,
		Params:     map[string][]string{"local": {"1"}},
	}
}

// owners returns the replica set of (db, measurement) in ring order.
func (c *Cluster) owners(db, measurement string) []string {
	return c.ring.Owners(PlacementKey(db, measurement), c.cfg.Replication)
}

// pendingHints returns the queued hint batches for a peer; self and
// unknown ids report zero.
func (c *Cluster) pendingHints(id string) int {
	n := c.nodes[id]
	if n == nil || n.hints == nil {
		return 0
	}
	d, _ := n.hints.depth()
	return d
}

// ---------------------------------------------------------------------------
// Database fan-out (CREATE DATABASE on every node).
//
// Writes autocreate the database on the owning replicas, but a SELECT for
// a measurement nobody ever wrote can land on a node that never saw the
// database at all and would answer "database does not exist" where a
// single-node store answers with an empty result. ensureDatabase
// eagerly creates the database on every member the first time the write
// path sees it, keeping the ghost-measurement behavior of the cluster
// byte-identical to a single node once the fan-out completes.

// ensureDatabase asynchronously creates db on every cluster member that
// has not confirmed it yet. It returns immediately; Ensure is the
// synchronous form.
func (c *Cluster) ensureDatabase(db string) {
	if missing := c.unensured(db); len(missing) > 0 {
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			_ = c.ensure(ctx, db)
		}()
	}
}

// Ensure synchronously creates db on every member, returning the first
// failure. The write path calls the asynchronous form; tests and
// provisioning tools call Ensure directly.
func (c *Cluster) Ensure(ctx context.Context, db string) error {
	return c.ensure(ctx, db)
}

func (c *Cluster) unensured(db string) []string {
	c.ensureMu.Lock()
	defer c.ensureMu.Unlock()
	state := c.ensured[db]
	if state == nil {
		state = make(map[string]bool, len(c.nodes))
		c.ensured[db] = state
	}
	var missing []string
	for _, id := range c.ring.Nodes() {
		if !state[id] {
			missing = append(missing, id)
		}
	}
	return missing
}

func (c *Cluster) ensure(ctx context.Context, db string) error {
	var firstErr error
	for _, id := range c.unensured(db) {
		n := c.nodes[id]
		var err error
		if n.local != nil {
			_, err = n.local.OpenDatabase(db)
		} else {
			st := tsdb.Statement{Kind: tsdb.StmtCreateDatabase, Target: db}
			var resp tsdb.Response
			resp, err = c.clientFor(id, "").Query(ctx, tsdb.Request{Statements: []tsdb.Statement{st}})
			if err == nil {
				err = resp.Err()
			}
		}
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: ensure %q on %s: %w", db, id, err)
			}
			continue
		}
		c.ensureMu.Lock()
		c.ensured[db][id] = true
		c.ensureMu.Unlock()
	}
	return firstErr
}

// ---------------------------------------------------------------------------
// Hint drain loop.

// kickDrain wakes the drain loop early (a write just parked a hint).
func (c *Cluster) kickDrain() {
	select {
	case c.drainKick <- struct{}{}:
	default:
	}
}

// drainLoop retries every peer's hint queue with exponential backoff:
// base interval after a kick, doubling per consecutive failed round up to
// 16x while a peer stays down, resetting once a drain makes progress.
func (c *Cluster) drainLoop() {
	defer c.wg.Done()
	backoff := c.cfg.DrainInterval
	timer := time.NewTimer(backoff)
	defer timer.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-c.drainKick:
			backoff = c.cfg.DrainInterval
		case <-timer.C:
		}
		replayed, failed := c.drainOnce()
		switch {
		case replayed > 0 || failed == 0:
			backoff = c.cfg.DrainInterval
		case backoff < 16*c.cfg.DrainInterval:
			backoff *= 2
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(backoff)
	}
}

// drainOnce attempts one drain round over all peers with pending hints.
func (c *Cluster) drainOnce() (replayed, failed int) {
	for _, id := range c.ring.Nodes() {
		n := c.nodes[id]
		if n.hints == nil {
			continue
		}
		if d, _ := n.hints.depth(); d == 0 {
			continue
		}
		got, err := n.hints.drain(func(db string, pts []lineproto.Point) error {
			return c.clientFor(id, db).WritePoints(pts)
		})
		n.replayed.Add(uint64(got))
		replayed += got
		if err != nil {
			failed++
			c.logf("cluster: hint drain to %s stalled after %d batches: %v", id, got, err)
		} else if got > 0 {
			c.logf("cluster: hint queue for %s drained (%d batches replayed)", id, got)
		}
	}
	return replayed, failed
}

// DrainHints synchronously replays every pending hint, returning the
// first per-peer failure (nil when all queues emptied). Tests and
// graceful shutdown use it; production relies on the background loop.
func (c *Cluster) DrainHints(ctx context.Context) error {
	var firstErr error
	for _, id := range c.ring.Nodes() {
		if err := ctx.Err(); err != nil {
			return err
		}
		n := c.nodes[id]
		if n.hints == nil {
			continue
		}
		got, err := n.hints.drain(func(db string, pts []lineproto.Point) error {
			return c.clientFor(id, db).WritePoints(pts)
		})
		n.replayed.Add(uint64(got))
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("cluster: drain to %s: %w", id, err)
		}
	}
	return firstErr
}

// PendingHints sums the queued hint batches across all peers.
func (c *Cluster) PendingHints() int {
	total := 0
	for _, n := range c.nodes {
		if n.hints != nil {
			d, _ := n.hints.depth()
			total += d
		}
	}
	return total
}

func (c *Cluster) closeQueues() {
	for _, n := range c.nodes {
		if n.hints != nil {
			_ = n.hints.close()
		}
	}
}

// Close stops the drain loop and closes the hint WALs. Pending hints stay
// on disk and are recovered by the next New with the same HintsDir.
func (c *Cluster) Close() error {
	c.closeOnce.Do(func() {
		close(c.done)
	})
	c.wg.Wait()
	c.closeQueues()
	return nil
}

// ---------------------------------------------------------------------------
// Observability (DESIGN.md §10): the cluster registers its series into the
// process's existing registry — the store's on lms-db, the router's on the
// router — so one /metrics scrape covers the whole path.

// RegisterMetrics adds the cluster series to reg. Call once, before
// serving.
func (c *Cluster) RegisterMetrics(reg *obs.Registry) {
	c.fanout.Store(reg.NewHistogram("lms_cluster_fanout_seconds",
		"Scatter-gather fan-out latency of distributed queries.", nil))
	reg.NewFunc("lms_cluster_ring_generation",
		"Digest of the cluster membership; equal values imply identical placement.",
		"gauge", func(emit func(string, float64)) {
			emit("", float64(c.ring.Generation()%(1<<53)))
		})
	reg.NewFunc("lms_cluster_nodes", "Cluster member count.", "gauge",
		func(emit func(string, float64)) {
			emit("", float64(len(c.ring.Nodes())))
		})
	reg.NewFunc("lms_cluster_replicated_batches_total",
		"Replicated write batches per peer and outcome.", "counter",
		func(emit func(string, float64)) {
			for _, id := range c.ring.Nodes() {
				n := c.nodes[id]
				emit(obs.L("peer", id, "status", "ok"), float64(n.batchesOK.Load()))
				emit(obs.L("peer", id, "status", "error"), float64(n.batchesErr.Load()))
			}
		})
	reg.NewFunc("lms_cluster_replicated_points_total",
		"Replicated write points per peer and outcome.", "counter",
		func(emit func(string, float64)) {
			for _, id := range c.ring.Nodes() {
				n := c.nodes[id]
				emit(obs.L("peer", id, "status", "ok"), float64(n.pointsOK.Load()))
				emit(obs.L("peer", id, "status", "error"), float64(n.pointsErr.Load()))
			}
		})
	reg.NewFunc("lms_cluster_hint_queue_depth",
		"Hinted-handoff batches queued per peer.", "gauge",
		func(emit func(string, float64)) {
			for _, id := range c.ring.Nodes() {
				if n := c.nodes[id]; n.hints != nil {
					d, _ := n.hints.depth()
					emit(obs.L("peer", id), float64(d))
				}
			}
		})
	reg.NewFunc("lms_cluster_hint_queue_bytes",
		"Hinted-handoff bytes queued per peer.", "gauge",
		func(emit func(string, float64)) {
			for _, id := range c.ring.Nodes() {
				if n := c.nodes[id]; n.hints != nil {
					_, b := n.hints.depth()
					emit(obs.L("peer", id), float64(b))
				}
			}
		})
	reg.NewFunc("lms_cluster_hints_replayed_total",
		"Hint batches replayed to healed peers.", "counter",
		func(emit func(string, float64)) {
			for _, id := range c.ring.Nodes() {
				if n := c.nodes[id]; n.hints != nil {
					emit(obs.L("peer", id), float64(n.replayed.Load()))
				}
			}
		})
	reg.NewFunc("lms_cluster_hints_dropped_total",
		"Hints lost to a full or failed queue.", "counter",
		func(emit func(string, float64)) {
			for _, id := range c.ring.Nodes() {
				if n := c.nodes[id]; n.hints != nil {
					emit(obs.L("peer", id), float64(n.hintDropped.Load()))
				}
			}
		})
	reg.NewFunc("lms_cluster_quorum_failures_total",
		"Write batches failed below write quorum.", "counter",
		func(emit func(string, float64)) {
			emit("", float64(c.quorumFailures.Load()))
		})
	reg.NewFunc("lms_cluster_read_failovers_total",
		"Statements retried on another replica after a replica failure.", "counter",
		func(emit func(string, float64)) {
			emit("", float64(c.readFailovers.Load()))
		})
}

// observeFanout records one scatter-gather round-trip, when metrics are
// registered.
func (c *Cluster) observeFanout(d time.Duration) {
	if h := c.fanout.Load(); h != nil {
		h.Observe(d.Seconds())
	}
}

// readOrder orders a replica set for a read: healthy replicas first (a
// peer with queued hints is known to be missing acknowledged writes —
// route around it until handoff drains), self-preferred within each class
// (no HTTP hop), ring order otherwise. The slice is freshly allocated.
func (c *Cluster) readOrder(owners []string) []string {
	out := append([]string(nil), owners...)
	sort.SliceStable(out, func(a, b int) bool {
		ha, hb := c.pendingHints(out[a]) > 0, c.pendingHints(out[b]) > 0
		if ha != hb {
			return !ha
		}
		sa, sb := out[a] == c.cfg.Self, out[b] == c.cfg.Self
		return sa && !sb
	})
	return out
}
