// Package durable implements the on-disk persistence formats of the LMS
// time-series database (DESIGN.md §9): a segmented, CRC32-framed
// write-ahead log for the hot ingest path and immutable columnar
// checkpoint files for the bulk of the data. The design follows the
// InfluxDB storage engine the paper's stack persists into (WAL + read-only
// TSM files, DESIGN.md §2): every acknowledged write first lands in the
// log, and a background checkpoint periodically serializes the in-memory
// column blocks so the log can be truncated.
//
// The package is deliberately storage-only: it knows the file formats and
// nothing about shards, series maps or query engines. The tsdb package
// owns the translation between its in-memory columnar runs and the
// neutral Snapshot structs defined here (tsdb/persist.go), and drives the
// WAL/checkpoint lifecycle:
//
//   - WAL (wal.go): append-only segments of length+CRC32 framed records,
//     rotated by size. A record is one binary-encoded point batch
//     (batch.go). Fsync behaviour is configurable per FsyncPolicy.
//   - Checkpoints (snapshot.go): one self-contained file holding every
//     measurement's column blocks — sorted timestamp columns as varint
//     deltas, typed value columns, interned string tables, presence
//     bitmaps. Written to a temp file, fsynced, atomically renamed.
//     The file name carries the WAL segment index recovery must replay
//     from; older segments are deleted after the rename.
//   - Recovery: load the newest valid checkpoint, then replay the WAL
//     tail record by record. A torn final record (crash mid-append) is
//     detected by its CRC/length frame and the log is truncated at the
//     first bad frame — everything acknowledged before it survives.
package durable

import (
	"fmt"
	"time"

	"repro/internal/fsys"
)

// FsyncPolicy selects when the WAL fsyncs appended records to stable
// storage. The zero value is the safest (sync every batch).
type FsyncPolicy uint8

const (
	// FsyncPerBatch syncs after every appended batch before the write is
	// acknowledged: no acknowledged point is ever lost, at the price of
	// one fsync per ingest round trip.
	FsyncPerBatch FsyncPolicy = iota
	// FsyncEveryInterval syncs on a background timer (Options.FsyncInterval):
	// a crash loses at most one interval of acknowledged writes, the
	// ingest path never blocks on the disk.
	FsyncEveryInterval
	// FsyncOff never syncs explicitly; the OS flushes the page cache at
	// its leisure. A machine crash may lose recent writes, a process
	// crash loses nothing (the data sits in the kernel).
	FsyncOff
)

// String returns the canonical flag spelling of the policy.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncPerBatch:
		return "batch"
	case FsyncEveryInterval:
		return "interval"
	case FsyncOff:
		return "off"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", uint8(p))
	}
}

// ParseFsyncPolicy parses the flag spellings of the fsync policies.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "", "batch", "always", "per-batch":
		return FsyncPerBatch, nil
	case "interval":
		return FsyncEveryInterval, nil
	case "off", "none", "never":
		return FsyncOff, nil
	default:
		return 0, fmt.Errorf("durable: unknown fsync policy %q (want batch, interval or off)", s)
	}
}

// Options configure a WAL. The zero value selects per-batch fsync, a
// 100ms sync interval (unused unless FsyncEveryInterval) and 8 MiB
// segments.
type Options struct {
	Fsync         FsyncPolicy
	FsyncInterval time.Duration // FsyncEveryInterval period; <=0 selects 100ms
	SegmentBytes  int64         // rotate segments past this size; <=0 selects 8 MiB

	// SyncObserver, if set, receives the duration of every fsync the WAL
	// issues (group commits, interval syncs, rotations, Close). The
	// observability layer (internal/obs) feeds a latency histogram from
	// it; the callback must be cheap and safe for concurrent use.
	SyncObserver func(time.Duration)

	// OnSeal, if set, is called exactly once when the log seals itself
	// after a write or fsync failure (DESIGN.md §11) with the latched
	// error. It runs under the WAL's internal lock: it must be cheap and
	// must not call back into the WAL. The tsdb layer uses it to log the
	// seal reason and raise the lms_db_wal_sealed gauge.
	OnSeal func(error)

	// FS is the filesystem the log and checkpoints run on. Nil selects
	// the real one (fsys.OS); chaos tests inject internal/faultfs.
	FS fsys.FS
}

func (o Options) withDefaults() Options {
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = 100 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.FS == nil {
		o.FS = fsys.OS{}
	}
	return o
}
