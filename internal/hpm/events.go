package hpm

import "fmt"

// Scope says at which topological entity an event is counted. Core-scope
// events live in per-hardware-thread counters (PMC/FIXC), socket-scope
// events in uncore counters (memory controller boxes, RAPL energy).
type Scope uint8

// Event scopes.
const (
	ScopeThread Scope = iota
	ScopeSocket
)

// String returns "thread" or "socket".
func (s Scope) String() string {
	if s == ScopeSocket {
		return "socket"
	}
	return "thread"
}

// Event describes one countable hardware event.
type Event struct {
	Name  string
	Scope Scope
	Desc  string
}

// eventCatalog is the architectural event list of the simulated CPU. Names
// follow the Intel/LIKWID convention so the built-in group files read like
// the originals.
var eventCatalog = map[string]Event{
	// Fixed-purpose core counters.
	"INSTR_RETIRED_ANY":     {Name: "INSTR_RETIRED_ANY", Scope: ScopeThread, Desc: "retired instructions"},
	"CPU_CLK_UNHALTED_CORE": {Name: "CPU_CLK_UNHALTED_CORE", Scope: ScopeThread, Desc: "core cycles while not halted"},
	"CPU_CLK_UNHALTED_REF":  {Name: "CPU_CLK_UNHALTED_REF", Scope: ScopeThread, Desc: "reference cycles while not halted"},
	// Floating point (double precision).
	"FP_ARITH_INST_RETIRED_SCALAR_DOUBLE":      {Name: "FP_ARITH_INST_RETIRED_SCALAR_DOUBLE", Scope: ScopeThread, Desc: "scalar DP ops"},
	"FP_ARITH_INST_RETIRED_128B_PACKED_DOUBLE": {Name: "FP_ARITH_INST_RETIRED_128B_PACKED_DOUBLE", Scope: ScopeThread, Desc: "SSE packed DP ops"},
	"FP_ARITH_INST_RETIRED_256B_PACKED_DOUBLE": {Name: "FP_ARITH_INST_RETIRED_256B_PACKED_DOUBLE", Scope: ScopeThread, Desc: "AVX packed DP ops"},
	// Floating point (single precision).
	"FP_ARITH_INST_RETIRED_SCALAR_SINGLE":      {Name: "FP_ARITH_INST_RETIRED_SCALAR_SINGLE", Scope: ScopeThread, Desc: "scalar SP ops"},
	"FP_ARITH_INST_RETIRED_128B_PACKED_SINGLE": {Name: "FP_ARITH_INST_RETIRED_128B_PACKED_SINGLE", Scope: ScopeThread, Desc: "SSE packed SP ops"},
	"FP_ARITH_INST_RETIRED_256B_PACKED_SINGLE": {Name: "FP_ARITH_INST_RETIRED_256B_PACKED_SINGLE", Scope: ScopeThread, Desc: "AVX packed SP ops"},
	// Cache traffic.
	"L1D_REPLACEMENT": {Name: "L1D_REPLACEMENT", Scope: ScopeThread, Desc: "L1D lines loaded from L2"},
	"L1D_M_EVICT":     {Name: "L1D_M_EVICT", Scope: ScopeThread, Desc: "modified L1D lines evicted to L2"},
	"L2_LINES_IN_ALL": {Name: "L2_LINES_IN_ALL", Scope: ScopeThread, Desc: "L2 lines loaded from L3"},
	"L2_TRANS_L2_WB":  {Name: "L2_TRANS_L2_WB", Scope: ScopeThread, Desc: "L2 writebacks to L3"},
	// Branches.
	"BR_INST_RETIRED_ALL_BRANCHES": {Name: "BR_INST_RETIRED_ALL_BRANCHES", Scope: ScopeThread, Desc: "retired branch instructions"},
	"BR_MISP_RETIRED_ALL_BRANCHES": {Name: "BR_MISP_RETIRED_ALL_BRANCHES", Scope: ScopeThread, Desc: "mispredicted branches"},
	// Loads/stores.
	"MEM_UOPS_RETIRED_LOADS":  {Name: "MEM_UOPS_RETIRED_LOADS", Scope: ScopeThread, Desc: "retired load uops"},
	"MEM_UOPS_RETIRED_STORES": {Name: "MEM_UOPS_RETIRED_STORES", Scope: ScopeThread, Desc: "retired store uops"},
	// TLB.
	"DTLB_LOAD_MISSES_WALK_COMPLETED": {Name: "DTLB_LOAD_MISSES_WALK_COMPLETED", Scope: ScopeThread, Desc: "DTLB load miss page walks"},
	// Uncore: memory controller channel counters (cache lines).
	"CAS_COUNT_RD": {Name: "CAS_COUNT_RD", Scope: ScopeSocket, Desc: "DRAM read cache lines"},
	"CAS_COUNT_WR": {Name: "CAS_COUNT_WR", Scope: ScopeSocket, Desc: "DRAM written cache lines"},
	// Uncore: RAPL package energy, counted in microjoules.
	"PWR_PKG_ENERGY": {Name: "PWR_PKG_ENERGY", Scope: ScopeSocket, Desc: "package energy (uJ)"},
}

// LookupEvent resolves an event name against the catalog.
func LookupEvent(name string) (Event, error) {
	ev, ok := eventCatalog[name]
	if !ok {
		return Event{}, fmt.Errorf("hpm: unknown event %q", name)
	}
	return ev, nil
}

// EventNames lists all catalog events (unsorted map iteration hidden from
// callers by copying into a slice; callers sort if needed).
func EventNames() []string {
	names := make([]string, 0, len(eventCatalog))
	for n := range eventCatalog {
		names = append(names, n)
	}
	return names
}

// counterRegisters is the set of counter register names a group file may
// assign events to, with the scope each register can serve.
var counterRegisters = map[string]Scope{
	"FIXC0": ScopeThread, "FIXC1": ScopeThread, "FIXC2": ScopeThread,
	"PMC0": ScopeThread, "PMC1": ScopeThread, "PMC2": ScopeThread,
	"PMC3": ScopeThread, "PMC4": ScopeThread, "PMC5": ScopeThread,
	"MBOX0C0": ScopeSocket, "MBOX0C1": ScopeSocket,
	"PWR0": ScopeSocket,
}

// ValidCounter reports whether reg names a counter register and whether its
// scope can host the given event scope.
func ValidCounter(reg string, scope Scope) error {
	s, ok := counterRegisters[reg]
	if !ok {
		return fmt.Errorf("hpm: unknown counter register %q", reg)
	}
	if s != scope {
		return fmt.Errorf("hpm: counter %q is %s-scope, event is %s-scope", reg, s, scope)
	}
	return nil
}
