package obs

import (
	"sync/atomic"
)

// Gate is a bounded admission controller for ingest handlers: it tracks
// in-flight requests and in-flight body bytes against fixed budgets and
// refuses admission once either is exhausted. Handlers call Acquire before
// reading a request body and the returned release when the request is done;
// a refused acquisition is the signal to shed load (429 + Retry-After)
// instead of queueing unbounded work.
//
// Budgets of zero or below mean "unlimited" for that dimension, and a nil
// *Gate admits everything — callers need no branching for the unconfigured
// case.
//
// Admission is optimistic (add, check, undo on overflow): two racing
// requests may both briefly exceed the budget by one request before one
// backs out, which is harmless — the budget bounds memory within one
// request of the configured ceiling and never deadlocks.
type Gate struct {
	maxReqs  int64
	maxBytes int64
	reqs     atomic.Int64
	bytes    atomic.Int64
	shed     atomic.Uint64
}

// NewGate builds a gate admitting at most maxReqs concurrent requests and
// maxBytes summed in-flight body bytes. Either bound <= 0 is unlimited;
// both unlimited returns a working (but never-refusing) gate.
func NewGate(maxReqs, maxBytes int64) *Gate {
	return &Gate{maxReqs: maxReqs, maxBytes: maxBytes}
}

// Acquire admits one request carrying nbytes of body (0 when the length is
// unknown; such requests count against the request budget only). On success
// it returns ok=true and a release function that must be called exactly
// once when the request finishes. On refusal it returns ok=false, counts
// the shed, and the caller must not call release.
func (g *Gate) Acquire(nbytes int64) (release func(), ok bool) {
	if g == nil {
		return func() {}, true
	}
	if nbytes < 0 {
		nbytes = 0
	}
	if r := g.reqs.Add(1); g.maxReqs > 0 && r > g.maxReqs {
		g.reqs.Add(-1)
		g.shed.Add(1)
		return nil, false
	}
	if b := g.bytes.Add(nbytes); g.maxBytes > 0 && b > g.maxBytes {
		g.bytes.Add(-nbytes)
		g.reqs.Add(-1)
		g.shed.Add(1)
		return nil, false
	}
	var done atomic.Bool
	return func() {
		if done.CompareAndSwap(false, true) {
			g.bytes.Add(-nbytes)
			g.reqs.Add(-1)
		}
	}, true
}

// InFlight returns the currently admitted request and byte counts.
func (g *Gate) InFlight() (reqs, bytes int64) {
	if g == nil {
		return 0, 0
	}
	return g.reqs.Load(), g.bytes.Load()
}

// Shed returns the number of refused acquisitions.
func (g *Gate) Shed() uint64 {
	if g == nil {
		return 0
	}
	return g.shed.Load()
}

// Limits returns the configured budgets (0 = unlimited).
func (g *Gate) Limits() (maxReqs, maxBytes int64) {
	if g == nil {
		return 0, 0
	}
	return g.maxReqs, g.maxBytes
}
