// Command lms-stream attaches a stream analyzer to the router's
// ZeroMQ-style publisher (paper Sect. III-B: "In order to attach other
// tools like aggregators and stream analyzers to the router, the meta
// information (job starts, tags, ...) and the metrics can be published via
// ZeroMQ").
//
// It maintains running aggregates per series, prints job start/end meta
// messages, raises online threshold alarms the moment a rule's sustained
// window crosses its timeout, and dumps an aggregate snapshot every
// -snapshot interval.
//
// Usage:
//
//	lms-stream -publisher 127.0.0.1:5571 -snapshot 30s
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/stream"
)

func main() { cli.Main("lms-stream", run) }

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("lms-stream", flag.ContinueOnError)
	pubAddr := fs.String("publisher", "127.0.0.1:5571", "router publisher address")
	snapshot := fs.Duration("snapshot", 30*time.Second, "aggregate snapshot interval (0 = off)")
	if done, err := cli.Parse(fs, args, stdout); done || err != nil {
		return err
	}

	a := stream.New(stream.Config{
		OnAlarm: func(al stream.Alarm) {
			fmt.Fprintf(stdout, "ALARM host=%s job=%s %s\n", al.Host, al.JobID, al.Violation.String())
		},
		OnJob: func(ev stream.JobEvent) {
			kind := "end"
			if ev.Start {
				kind = "start"
			}
			fmt.Fprintf(stdout, "JOB %s id=%s user=%s nodes=%s\n",
				kind, ev.JobID, ev.User, strings.Join(ev.Nodes, ","))
		},
	})
	if err := a.Attach(*pubAddr); err != nil {
		return err
	}
	defer a.Close()
	fmt.Fprintf(stdout, "lms-stream: attached to %s\n", *pubAddr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	if *snapshot > 0 {
		tick := time.NewTicker(*snapshot)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				fmt.Fprint(stdout, a.FormatSnapshot())
			case <-sig:
				return nil
			}
		}
	}
	<-sig
	return nil
}
