package analysis

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/lineproto"
	"repro/internal/tsdb"
)

// TestDiscoverJobNodesScopedByJob: against a shared multi-job database only
// the hostnames of series tagged with the job id come back — not every
// host the database has ever seen.
func TestDiscoverJobNodesScopedByJob(t *testing.T) {
	db := tsdb.NewDB("lms")
	ts := time.Unix(1000, 0)
	write := func(meas, host, jobid string) {
		t.Helper()
		tags := map[string]string{"hostname": host}
		if jobid != "" {
			tags["jobid"] = jobid
		}
		if err := db.WritePoint(lineproto.Point{
			Measurement: meas,
			Tags:        tags,
			Fields:      map[string]lineproto.Value{"v": lineproto.Float(1)},
			Time:        ts,
		}); err != nil {
			t.Fatal(err)
		}
	}
	write("cpu", "node01", "42")
	write("likwid_mem_dp", "node02", "42")
	write("cpu", "node99", "7") // another job on the same cluster
	write("memory", "node50", "")

	nodes, err := DiscoverJobNodes(context.Background(), tsdb.QuerierFor(db), "lms", "42")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(nodes, ",") != "node01,node02" {
		t.Fatalf("nodes %v, want [node01 node02]", nodes)
	}
}

// TestEvaluateRemoteFailureIsAnError: an unreachable remote database must
// fail the evaluation instead of producing an all-NaN "clean" report with
// exit status 0.
func TestEvaluateRemoteFailureIsAnError(t *testing.T) {
	srv := httptest.NewServer(nil)
	srv.Close() // guaranteed-refused address
	ev := &Evaluator{
		Querier:  &tsdb.Client{BaseURL: srv.URL, Database: "lms", MaxRetries: -1},
		Database: "lms",
	}
	_, err := ev.Evaluate(JobMeta{
		ID: "42", Nodes: []string{"h1"},
		Start: time.Unix(0, 0), End: time.Unix(100, 0),
	})
	if err == nil {
		t.Fatal("unreachable database produced a report")
	}
}

// TestDiscoverJobNodesFallback: a dump recorded without job enrichment has
// no jobid tags anywhere; discovery falls back to every hostname.
func TestDiscoverJobNodesFallback(t *testing.T) {
	db := tsdb.NewDB("lms")
	for _, host := range []string{"h2", "h1"} {
		if err := db.WritePoint(lineproto.Point{
			Measurement: "cpu",
			Tags:        map[string]string{"hostname": host},
			Fields:      map[string]lineproto.Value{"v": lineproto.Float(1)},
			Time:        time.Unix(1000, 0),
		}); err != nil {
			t.Fatal(err)
		}
	}
	nodes, err := DiscoverJobNodes(context.Background(), tsdb.QuerierFor(db), "lms", "42")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(nodes, ",") != "h1,h2" {
		t.Fatalf("fallback nodes %v", nodes)
	}
}
