// Package lineproto implements the InfluxDB line protocol used as the single
// wire format of the LIKWID Monitoring Stack (LMS).
//
// The paper (Sect. III-A) chooses the line protocol because it separates
// metric values from metric tags, supports concatenating multiple lines for
// batched transmission, and stays human-readable for debugging. This package
// provides a faithful encoder and parser for the protocol:
//
//	measurement[,tagkey=tagvalue...] fieldkey=fieldvalue[,...] [timestamp]
//
// Field values may be floats (default), integers ("i" suffix), booleans, or
// double-quoted strings (used by LMS for events). Timestamps are integer
// nanoseconds since the Unix epoch.
package lineproto

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ValueKind enumerates the value types representable in a line-protocol field.
type ValueKind uint8

// The four field value kinds of the line protocol.
const (
	KindFloat ValueKind = iota
	KindInt
	KindBool
	KindString
)

// String returns the lowercase name of the kind.
func (k ValueKind) String() string {
	switch k {
	case KindFloat:
		return "float"
	case KindInt:
		return "int"
	case KindBool:
		return "bool"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("ValueKind(%d)", uint8(k))
	}
}

// Value is a dynamically typed field value. The zero Value is the float 0.
type Value struct {
	kind ValueKind
	num  float64 // float, int (as float bits via math trick avoided: store separately), bool (0/1)
	i    int64
	str  string
}

// Float returns a float-typed Value.
func Float(f float64) Value { return Value{kind: KindFloat, num: f} }

// Int returns an integer-typed Value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Bool returns a boolean-typed Value.
func Bool(b bool) Value {
	v := Value{kind: KindBool}
	if b {
		v.i = 1
	}
	return v
}

// String returns a string-typed Value.
func String(s string) Value { return Value{kind: KindString, str: s} }

// Kind reports the value's type.
func (v Value) Kind() ValueKind { return v.kind }

// FloatVal returns the value as a float64. Integers and booleans are
// converted; strings yield 0.
func (v Value) FloatVal() float64 {
	switch v.kind {
	case KindFloat:
		return v.num
	case KindInt:
		return float64(v.i)
	case KindBool:
		return float64(v.i)
	default:
		return 0
	}
}

// IntVal returns the value as an int64, truncating floats.
func (v Value) IntVal() int64 {
	switch v.kind {
	case KindFloat:
		return int64(v.num)
	case KindInt, KindBool:
		return v.i
	default:
		return 0
	}
}

// BoolVal returns the value as a bool (non-zero numbers are true).
func (v Value) BoolVal() bool {
	switch v.kind {
	case KindString:
		return v.str == "true"
	default:
		return v.i != 0 || v.num != 0
	}
}

// StringVal returns the string payload for string values and a formatted
// representation for the numeric kinds.
func (v Value) StringVal() string {
	switch v.kind {
	case KindString:
		return v.str
	case KindFloat:
		return strconv.FormatFloat(v.num, 'g', -1, 64)
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	default:
		return ""
	}
}

// Equal reports deep equality of two values, treating NaN floats as equal so
// round-trip properties hold.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindFloat:
		if math.IsNaN(v.num) && math.IsNaN(o.num) {
			return true
		}
		return v.num == o.num
	case KindInt, KindBool:
		return v.i == o.i
	case KindString:
		return v.str == o.str
	default:
		return false
	}
}

// Point is one decoded line: a measurement with tags, fields and an optional
// timestamp. A zero Time means "no timestamp supplied" (the receiver assigns
// arrival time, mirroring InfluxDB behaviour).
type Point struct {
	Measurement string
	Tags        map[string]string
	Fields      map[string]Value
	Time        time.Time
}

// Field is one field key/value pair of a point, produced by AppendFields.
type Field struct {
	Key   string
	Value Value
}

// AppendFields appends the point's fields to dst, ordered by key, and
// returns the extended slice. It is the batch-append fast path feeding
// columnar consumers (tsdb run builders): callers reuse dst as a scratch
// buffer across points, so iterating a whole batch allocates nothing and
// sees every point's fields in one deterministic order regardless of map
// iteration. Field counts are small, so an insertion sort beats building
// and sorting a key slice.
func (p Point) AppendFields(dst []Field) []Field {
	start := len(dst)
	for k, v := range p.Fields {
		dst = append(dst, Field{Key: k, Value: v})
		for i := len(dst) - 1; i > start && dst[i-1].Key > dst[i].Key; i-- {
			dst[i-1], dst[i] = dst[i], dst[i-1]
		}
	}
	return dst
}

// Clone returns a deep copy of the point. Mutating the clone's maps does not
// affect the original; the router relies on this before tag enrichment.
func (p Point) Clone() Point {
	c := Point{Measurement: p.Measurement, Time: p.Time}
	if p.Tags != nil {
		c.Tags = make(map[string]string, len(p.Tags))
		for k, v := range p.Tags {
			c.Tags[k] = v
		}
	}
	if p.Fields != nil {
		c.Fields = make(map[string]Value, len(p.Fields))
		for k, v := range p.Fields {
			c.Fields[k] = v
		}
	}
	return c
}

// Equal reports semantic equality of two points (map order irrelevant,
// timestamps compared at nanosecond resolution).
func (p Point) Equal(o Point) bool {
	if p.Measurement != o.Measurement || !p.Time.Equal(o.Time) {
		return false
	}
	if len(p.Tags) != len(o.Tags) || len(p.Fields) != len(o.Fields) {
		return false
	}
	for k, v := range p.Tags {
		if ov, ok := o.Tags[k]; !ok || ov != v {
			return false
		}
	}
	for k, v := range p.Fields {
		if ov, ok := o.Fields[k]; !ok || !v.Equal(ov) {
			return false
		}
	}
	return true
}

// Validate checks that the point can be encoded: non-empty measurement, at
// least one field, and no empty tag/field keys or tag values.
func (p Point) Validate() error {
	if p.Measurement == "" {
		return errors.New("lineproto: empty measurement")
	}
	if len(p.Fields) == 0 {
		return fmt.Errorf("lineproto: point %q has no fields", p.Measurement)
	}
	for k, v := range p.Tags {
		if k == "" {
			return fmt.Errorf("lineproto: point %q has empty tag key", p.Measurement)
		}
		if v == "" {
			return fmt.Errorf("lineproto: point %q tag %q has empty value", p.Measurement, k)
		}
	}
	for k := range p.Fields {
		if k == "" {
			return fmt.Errorf("lineproto: point %q has empty field key", p.Measurement)
		}
	}
	return nil
}

// escape appends s to dst, backslash-escaping every byte contained in chars.
func escape(dst []byte, s, chars string) []byte {
	for i := 0; i < len(s); i++ {
		if strings.IndexByte(chars, s[i]) >= 0 {
			dst = append(dst, '\\')
		}
		dst = append(dst, s[i])
	}
	return dst
}

const (
	measurementEscapes = ", \\"
	keyEscapes         = ",= \\"
)

// AppendPoint appends the canonical single-line encoding of p to dst and
// returns the extended slice. Tags and fields are emitted in sorted key order
// so the encoding is deterministic. It returns an error for invalid points.
func AppendPoint(dst []byte, p Point) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return dst, err
	}
	dst = escape(dst, p.Measurement, measurementEscapes)
	if len(p.Tags) > 0 {
		keys := make([]string, 0, len(p.Tags))
		for k := range p.Tags {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			dst = append(dst, ',')
			dst = escape(dst, k, keyEscapes)
			dst = append(dst, '=')
			dst = escape(dst, p.Tags[k], keyEscapes)
		}
	}
	dst = append(dst, ' ')
	fkeys := make([]string, 0, len(p.Fields))
	for k := range p.Fields {
		fkeys = append(fkeys, k)
	}
	sort.Strings(fkeys)
	for i, k := range fkeys {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = escape(dst, k, keyEscapes)
		dst = append(dst, '=')
		dst = appendValue(dst, p.Fields[k])
	}
	if !p.Time.IsZero() {
		dst = append(dst, ' ')
		dst = strconv.AppendInt(dst, p.Time.UnixNano(), 10)
	}
	return dst, nil
}

func appendValue(dst []byte, v Value) []byte {
	switch v.kind {
	case KindFloat:
		return strconv.AppendFloat(dst, v.num, 'g', -1, 64)
	case KindInt:
		dst = strconv.AppendInt(dst, v.i, 10)
		return append(dst, 'i')
	case KindBool:
		if v.i != 0 {
			return append(dst, 't', 'r', 'u', 'e')
		}
		return append(dst, 'f', 'a', 'l', 's', 'e')
	case KindString:
		dst = append(dst, '"')
		for i := 0; i < len(v.str); i++ {
			if v.str[i] == '"' || v.str[i] == '\\' {
				dst = append(dst, '\\')
			}
			dst = append(dst, v.str[i])
		}
		return append(dst, '"')
	default:
		return dst
	}
}

// Encode renders a batch of points, one line each, separated by '\n'.
// Batched transmission is the normal LMS transport mode (Sect. III-A).
func Encode(points []Point) ([]byte, error) {
	var dst []byte
	for i, p := range points {
		var err error
		dst, err = AppendPoint(dst, p)
		if err != nil {
			return nil, fmt.Errorf("point %d: %w", i, err)
		}
		dst = append(dst, '\n')
	}
	return dst, nil
}

// EncodePoint renders a single point without a trailing newline.
func EncodePoint(p Point) ([]byte, error) {
	return AppendPoint(nil, p)
}

// ParseError describes a syntax error with the offending line number
// (1-based) and a short reason.
type ParseError struct {
	Line   int
	Reason string
	Input  string
}

func (e *ParseError) Error() string {
	in := e.Input
	if len(in) > 80 {
		in = in[:80] + "..."
	}
	return fmt.Sprintf("lineproto: line %d: %s (input %q)", e.Line, e.Reason, in)
}

// Parse decodes a batch of newline-separated lines. Empty lines and lines
// starting with '#' are skipped (comments aid cronjob/curl debugging).
func Parse(data []byte) ([]Point, error) {
	var points []Point
	lineNo := 0
	for len(data) > 0 {
		lineNo++
		var line []byte
		if idx := indexByte(data, '\n'); idx >= 0 {
			line = data[:idx]
			data = data[idx+1:]
		} else {
			line = data
			data = nil
		}
		line = trimSpace(line)
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		p, err := parseLine(string(line))
		if err != nil {
			return nil, &ParseError{Line: lineNo, Reason: err.Error(), Input: string(line)}
		}
		points = append(points, p)
	}
	return points, nil
}

// ParseLine decodes a single line.
func ParseLine(line string) (Point, error) {
	p, err := parseLine(strings.TrimSpace(line))
	if err != nil {
		return Point{}, &ParseError{Line: 1, Reason: err.Error(), Input: line}
	}
	return p, nil
}

func indexByte(b []byte, c byte) int {
	for i := range b {
		if b[i] == c {
			return i
		}
	}
	return -1
}

func trimSpace(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\r') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t' || b[len(b)-1] == '\r') {
		b = b[:len(b)-1]
	}
	return b
}

// scanner walks a single line honouring backslash escapes and quoted strings.
type scanner struct {
	s   string
	pos int
}

func (sc *scanner) eof() bool { return sc.pos >= len(sc.s) }

// token consumes until an unescaped byte in stop is found; the stop byte is
// not consumed. Escapes are resolved in the returned string.
func (sc *scanner) token(stop string) (string, error) {
	var b strings.Builder
	for !sc.eof() {
		c := sc.s[sc.pos]
		if c == '\\' {
			if sc.pos+1 >= len(sc.s) {
				return "", errors.New("dangling backslash")
			}
			nxt := sc.s[sc.pos+1]
			if strings.IndexByte(keyEscapes+`"\`, nxt) >= 0 {
				b.WriteByte(nxt)
				sc.pos += 2
				continue
			}
			// Unknown escape: keep backslash literally (InfluxDB behaviour).
			b.WriteByte(c)
			sc.pos++
			continue
		}
		if strings.IndexByte(stop, c) >= 0 {
			break
		}
		b.WriteByte(c)
		sc.pos++
	}
	return b.String(), nil
}

func parseLine(line string) (Point, error) {
	if line == "" {
		return Point{}, errors.New("empty line")
	}
	sc := &scanner{s: line}
	meas, err := sc.token(", ")
	if err != nil {
		return Point{}, err
	}
	if meas == "" {
		return Point{}, errors.New("empty measurement")
	}
	p := Point{Measurement: meas}
	// Tags.
	for !sc.eof() && sc.s[sc.pos] == ',' {
		sc.pos++
		key, err := sc.token("=, ")
		if err != nil {
			return Point{}, err
		}
		if sc.eof() || sc.s[sc.pos] != '=' {
			return Point{}, fmt.Errorf("tag %q missing '='", key)
		}
		sc.pos++
		val, err := sc.token(", ")
		if err != nil {
			return Point{}, err
		}
		if key == "" || val == "" {
			return Point{}, errors.New("empty tag key or value")
		}
		if p.Tags == nil {
			p.Tags = make(map[string]string, 4)
		}
		p.Tags[key] = val
	}
	if sc.eof() || sc.s[sc.pos] != ' ' {
		return Point{}, errors.New("missing field section")
	}
	for !sc.eof() && sc.s[sc.pos] == ' ' {
		sc.pos++
	}
	// Fields.
	p.Fields = make(map[string]Value, 4)
	for {
		key, err := sc.token("=, ")
		if err != nil {
			return Point{}, err
		}
		if key == "" {
			return Point{}, errors.New("empty field key")
		}
		if sc.eof() || sc.s[sc.pos] != '=' {
			return Point{}, fmt.Errorf("field %q missing '='", key)
		}
		sc.pos++
		val, err := sc.fieldValue()
		if err != nil {
			return Point{}, fmt.Errorf("field %q: %w", key, err)
		}
		p.Fields[key] = val
		if sc.eof() {
			return p, nil
		}
		switch sc.s[sc.pos] {
		case ',':
			sc.pos++
		case ' ':
			for !sc.eof() && sc.s[sc.pos] == ' ' {
				sc.pos++
			}
			if sc.eof() {
				return p, nil
			}
			ts := sc.s[sc.pos:]
			ns, err := strconv.ParseInt(ts, 10, 64)
			if err != nil {
				return Point{}, fmt.Errorf("bad timestamp %q", ts)
			}
			p.Time = time.Unix(0, ns).UTC()
			return p, nil
		default:
			return Point{}, fmt.Errorf("unexpected byte %q after field", sc.s[sc.pos])
		}
	}
}

func (sc *scanner) fieldValue() (Value, error) {
	if sc.eof() {
		return Value{}, errors.New("empty value")
	}
	if sc.s[sc.pos] == '"' {
		sc.pos++
		var b strings.Builder
		for {
			if sc.eof() {
				return Value{}, errors.New("unterminated string")
			}
			c := sc.s[sc.pos]
			if c == '\\' && sc.pos+1 < len(sc.s) {
				nxt := sc.s[sc.pos+1]
				if nxt == '"' || nxt == '\\' {
					b.WriteByte(nxt)
					sc.pos += 2
					continue
				}
			}
			if c == '"' {
				sc.pos++
				return String(b.String()), nil
			}
			b.WriteByte(c)
			sc.pos++
		}
	}
	raw, err := sc.token(", ")
	if err != nil {
		return Value{}, err
	}
	if raw == "" {
		return Value{}, errors.New("empty value")
	}
	switch raw {
	case "t", "T", "true", "True", "TRUE":
		return Bool(true), nil
	case "f", "F", "false", "False", "FALSE":
		return Bool(false), nil
	}
	if raw[len(raw)-1] == 'i' {
		n, err := strconv.ParseInt(raw[:len(raw)-1], 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("bad integer %q", raw)
		}
		return Int(n), nil
	}
	f, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return Value{}, fmt.Errorf("bad float %q", raw)
	}
	return Float(f), nil
}
