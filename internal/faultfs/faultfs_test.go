package faultfs

import (
	"errors"
	"os"
	"testing"
)

func mustOpen(t *testing.T, fs *FS, name string, flag int) interface {
	Write([]byte) (int, error)
	Sync() error
	Close() error
} {
	t.Helper()
	f, err := fs.OpenFile(name, flag, 0o644)
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	return f
}

func readAll(t *testing.T, fs *FS, name string) string {
	t.Helper()
	b, err := fs.ReadFile(name)
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	return string(b)
}

func TestWriteSyncCrashKeepsSyncedBytesOnly(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("d", 0o755); err != nil {
		t.Fatal(err)
	}
	f := mustOpen(t, fs, "d/f", os.O_CREATE|os.O_TRUNC|os.O_WRONLY)
	if _, err := f.Write([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("+volatile")); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, fs, "d/f"); got != "durable+volatile" {
		t.Fatalf("volatile read = %q", got)
	}
	fs.Crash()
	if got := readAll(t, fs, "d/f"); got != "durable" {
		t.Fatalf("post-crash read = %q, want synced prefix only", got)
	}
}

func TestCrashDropsUnsyncedDirectoryEntries(t *testing.T) {
	fs := New()
	fs.MkdirAll("d", 0o755)
	f := mustOpen(t, fs, "d/never-syncdired", os.O_CREATE|os.O_WRONLY)
	f.Write([]byte("x"))
	f.Sync() // file bytes synced, but the entry never was
	fs.Crash()
	if _, err := fs.ReadFile("d/never-syncdired"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("entry survived crash without SyncDir: %v", err)
	}
}

func TestCrashResurrectsRemovedFileUntilSyncDir(t *testing.T) {
	fs := New()
	fs.MkdirAll("d", 0o755)
	f := mustOpen(t, fs, "d/f", os.O_CREATE|os.O_WRONLY)
	f.Write([]byte("keep"))
	f.Sync()
	fs.SyncDir("d")

	if err := fs.Remove("d/f"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadFile("d/f"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("volatile remove not visible: %v", err)
	}
	fs.Crash() // removal never made durable
	if got := readAll(t, fs, "d/f"); got != "keep" {
		t.Fatalf("removed-but-unsynced file should resurrect, got %q", got)
	}

	fs.Remove("d/f")
	fs.SyncDir("d")
	fs.Crash()
	if _, err := fs.ReadFile("d/f"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("durably removed file resurrected: %v", err)
	}
}

func TestRenameDurableOnlyAfterSyncDir(t *testing.T) {
	fs := New()
	fs.MkdirAll("d", 0o755)
	f := mustOpen(t, fs, "d/tmp", os.O_CREATE|os.O_WRONLY)
	f.Write([]byte("snap"))
	f.Sync()
	fs.SyncDir("d")
	if err := fs.Rename("d/tmp", "d/final"); err != nil {
		t.Fatal(err)
	}
	fs.Crash() // rename not yet durable: old name returns
	if got := readAll(t, fs, "d/tmp"); got != "snap" {
		t.Fatalf("pre-syncdir crash should keep old name, got %q", got)
	}
	if _, err := fs.ReadFile("d/final"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("new name durable without SyncDir: %v", err)
	}

	fs.Rename("d/tmp", "d/final")
	fs.SyncDir("d")
	fs.Crash()
	if got := readAll(t, fs, "d/final"); got != "snap" {
		t.Fatalf("post-syncdir rename lost: %q", got)
	}
}

func TestFailOpInjectsOnceAtIndex(t *testing.T) {
	fs := New()
	fs.MkdirAll("d", 0o755)
	f := mustOpen(t, fs, "d/f", os.O_CREATE|os.O_WRONLY) // op 0
	fs.FailOp(2, ErrIO)
	if _, err := f.Write([]byte("a")); err != nil { // op 1
		t.Fatalf("op 1 should pass: %v", err)
	}
	if _, err := f.Write([]byte("b")); !errors.Is(err, ErrIO) { // op 2
		t.Fatalf("op 2 want EIO, got %v", err)
	}
	if _, err := f.Write([]byte("c")); err != nil { // op 3: transient fault cleared
		t.Fatalf("op 3 should pass: %v", err)
	}
	if got := readAll(t, fs, "d/f"); got != "ac" {
		t.Fatalf("failed write landed bytes: %q", got)
	}
}

func TestShortWriteKeepsPrefix(t *testing.T) {
	fs := New()
	fs.MkdirAll("d", 0o755)
	f := mustOpen(t, fs, "d/f", os.O_CREATE|os.O_WRONLY)
	fs.SetInject(func(i Info) *Fault {
		if i.Op == OpWrite {
			return &Fault{Err: ErrIO, Keep: 3}
		}
		return nil
	})
	n, err := f.Write([]byte("torn-frame"))
	if n != 3 || !errors.Is(err, ErrIO) {
		t.Fatalf("short write = (%d, %v), want (3, EIO)", n, err)
	}
	if got := readAll(t, fs, "d/f"); got != "tor" {
		t.Fatalf("short write landed %q", got)
	}
}

func TestDiskBudgetENOSPCPartialWrite(t *testing.T) {
	fs := New()
	fs.MkdirAll("d", 0o755)
	f := mustOpen(t, fs, "d/f", os.O_CREATE|os.O_WRONLY)
	fs.SetDiskBudget(5)
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatalf("within budget: %v", err)
	}
	n, err := f.Write([]byte("defg"))
	if n != 2 || !errors.Is(err, ErrNoSpace) {
		t.Fatalf("overrun = (%d, %v), want (2, ENOSPC)", n, err)
	}
	if _, err := f.Write([]byte("h")); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("exhausted budget should keep failing: %v", err)
	}
	if got := readAll(t, fs, "d/f"); got != "abcde" {
		t.Fatalf("budget content = %q", got)
	}
}

func TestKillAtOpDeadUntilCrash(t *testing.T) {
	fs := New()
	fs.MkdirAll("d", 0o755)
	f := mustOpen(t, fs, "d/f", os.O_CREATE|os.O_WRONLY) // op 0
	f.Write([]byte("synced"))                            // op 1
	f.Sync()                                             // op 2
	fs.SyncDir("d")                                      // op 3
	fs.KillAtOp(5)
	f.Write([]byte("+lost"))                            // op 4: last op before death, volatile only
	if err := f.Sync(); !errors.Is(err, ErrPowerLost) { // op 5
		t.Fatalf("op 5 want ErrPowerLost, got %v", err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrPowerLost) {
		t.Fatalf("dead machine accepted a write: %v", err)
	}
	if _, err := fs.ReadFile("d/f"); !errors.Is(err, ErrPowerLost) {
		t.Fatalf("dead machine served a read: %v", err)
	}
	fs.SetInject(nil) // disarm before reboot
	fs.Crash()
	if got := readAll(t, fs, "d/f"); got != "synced" {
		t.Fatalf("post-reboot content = %q", got)
	}
}

func TestTruncateIsVolatileUntilSync(t *testing.T) {
	fs := New()
	fs.MkdirAll("d", 0o755)
	f := mustOpen(t, fs, "d/f", os.O_CREATE|os.O_WRONLY)
	f.Write([]byte("goodtail"))
	f.Sync()
	fs.SyncDir("d")
	if err := fs.Truncate("d/f", 4); err != nil {
		t.Fatal(err)
	}
	fs.Crash() // truncate never fsynced: full content returns
	if got := readAll(t, fs, "d/f"); got != "goodtail" {
		t.Fatalf("unsynced truncate should not survive crash, got %q", got)
	}
	fs.Truncate("d/f", 4)
	if err := fs.SyncFile("d/f"); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	if got := readAll(t, fs, "d/f"); got != "good" {
		t.Fatalf("synced truncate lost: %q", got)
	}
}

func TestReadDirNamesSortedAndMissingDir(t *testing.T) {
	fs := New()
	if _, err := fs.ReadDirNames("nope"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing dir: %v", err)
	}
	fs.MkdirAll("d", 0o755)
	if names, err := fs.ReadDirNames("d"); err != nil || len(names) != 0 {
		t.Fatalf("empty dir = (%v, %v)", names, err)
	}
	mustOpen(t, fs, "d/b", os.O_CREATE|os.O_WRONLY)
	mustOpen(t, fs, "d/a", os.O_CREATE|os.O_WRONLY)
	names, err := fs.ReadDirNames("d")
	if err != nil || len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = (%v, %v)", names, err)
	}
}

func TestOpsCountsMutations(t *testing.T) {
	fs := New()
	fs.MkdirAll("d", 0o755) // not counted
	f := mustOpen(t, fs, "d/f", os.O_CREATE|os.O_WRONLY)
	f.Write([]byte("x"))
	f.Sync()
	fs.SyncDir("d")
	fs.ReadFile("d/f")   // not counted
	fs.ReadDirNames("d") // not counted
	if got := fs.Ops(); got != 4 {
		t.Fatalf("ops = %d, want 4 (open, write, sync, syncdir)", got)
	}
}

func TestOpenTruncResetsVolatileOnly(t *testing.T) {
	fs := New()
	fs.MkdirAll("d", 0o755)
	f := mustOpen(t, fs, "d/f", os.O_CREATE|os.O_WRONLY)
	f.Write([]byte("old"))
	f.Sync()
	fs.SyncDir("d")
	f2 := mustOpen(t, fs, "d/f", os.O_CREATE|os.O_TRUNC|os.O_WRONLY)
	f2.Write([]byte("n"))
	if got := readAll(t, fs, "d/f"); got != "n" {
		t.Fatalf("O_TRUNC reopen read = %q", got)
	}
	fs.Crash() // truncation and new byte never synced
	if got := readAll(t, fs, "d/f"); got != "old" {
		t.Fatalf("post-crash = %q, want pre-trunc synced content", got)
	}
}
