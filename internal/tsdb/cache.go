package tsdb

// A small TTL'd query-result cache in front of DB.Select, sized for the
// dashboard viewer's repeated panel refreshes: the same handful of
// normalized queries re-executed every few hundred milliseconds. Entries
// are keyed on the normalized Query and carry the invalidation generations
// captured *before* the snapshot was taken: every WriteBatch bumps the
// generation of each touched measurement and every retention sweep or
// DropBefore bumps the global generation, so a hit is only served while
// the underlying data is provably unchanged. Cached []Series values are
// shared between callers and must be treated as read-only.

import (
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lineproto"
)

const (
	// DefaultQueryCacheTTL bounds how long an untouched result may be
	// served. Generation checks already catch every mutation through the
	// DB's own API; the TTL is a safety net that also bounds staleness for
	// clock-sensitive callers.
	DefaultQueryCacheTTL = time.Second
	// maxQueryCacheEntries caps the cache footprint.
	maxQueryCacheEntries = 256
)

type cacheEntry struct {
	res     []Series
	mgen    uint64
	ggen    uint64
	expires int64 // unix ns
}

type queryCache struct {
	ttl     atomic.Int64
	hits    atomic.Uint64
	misses  atomic.Uint64
	mu      sync.Mutex
	entries map[string]*cacheEntry
}

func (c *queryCache) init() {
	c.entries = make(map[string]*cacheEntry)
	c.ttl.Store(int64(DefaultQueryCacheTTL))
}

// SetQueryCacheTTL configures how long Select results may be served from
// the cache. d <= 0 disables caching entirely.
func (db *DB) SetQueryCacheTTL(d time.Duration) {
	db.qcache.ttl.Store(int64(d))
}

// QueryCacheStats returns the number of Select calls served from the cache
// and the number that executed the engine (lookups while the cache is
// disabled count as neither).
func (db *DB) QueryCacheStats() (hits, misses uint64) {
	return db.qcache.hits.Load(), db.qcache.misses.Load()
}

// measGen returns the invalidation generation counter of one measurement,
// creating it on first use. Only the write side calls this: counters exist
// solely for measurements that were actually written, so query traffic
// with arbitrary (or nonexistent) measurement names cannot grow the map.
func (db *DB) measGen(measurement string) *atomic.Uint64 {
	if v, ok := db.measGens.Load(measurement); ok {
		return v.(*atomic.Uint64)
	}
	v, _ := db.measGens.LoadOrStore(measurement, new(atomic.Uint64))
	return v.(*atomic.Uint64)
}

// cacheGens snapshots the generations a Select result will be valid for.
// A measurement that was never written reads as generation 0; its first
// write creates the counter at 1, invalidating anything cached under 0.
func (db *DB) cacheGens(measurement string) (mgen, ggen uint64) {
	if v, ok := db.measGens.Load(measurement); ok {
		mgen = v.(*atomic.Uint64).Load()
	}
	return mgen, db.globalGen.Load()
}

// bumpMeasGens invalidates the cache for every measurement of a written
// batch. Batches arrive as runs per measurement, so bumping on run
// boundaries touches every distinct measurement (duplicate bumps for
// non-adjacent repeats are harmless).
func (db *DB) bumpMeasGens(pts []lineproto.Point) {
	prev := ""
	for i := range pts {
		if m := pts[i].Measurement; m != prev {
			db.measGen(m).Add(1)
			prev = m
		}
	}
}

// cacheRef carries the normalized key and pre-snapshot generations from a
// failed lookup to the store after the engine ran, so the miss path builds
// them exactly once.
type cacheRef struct {
	key        string
	mgen, ggen uint64
	enabled    bool
}

// lookup serves a query from the cache if possible; on a miss it returns
// the ref to store the computed result under. The generations are captured
// here, *before* the caller snapshots, so a write racing with the snapshot
// leaves the stored entry stale-marked.
func (c *queryCache) lookup(db *DB, q Query) ([]Series, cacheRef, bool) {
	if c.ttl.Load() <= 0 {
		return nil, cacheRef{}, false
	}
	ref := cacheRef{key: normKey(q), enabled: true}
	ref.mgen, ref.ggen = db.cacheGens(q.Measurement)
	now := time.Now().UnixNano()
	c.mu.Lock()
	e, ok := c.entries[ref.key]
	if ok && (now >= e.expires || e.mgen != ref.mgen || e.ggen != ref.ggen) {
		delete(c.entries, ref.key)
		ok = false
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, ref, false
	}
	c.hits.Add(1)
	// Return a copy of the top-level slice so callers appending to it do
	// not alias each other; the series themselves stay shared.
	return append([]Series(nil), e.res...), ref, true
}

// store files a computed result under a lookup's miss ref.
func (c *queryCache) store(db *DB, ref cacheRef, res []Series) {
	ttl := c.ttl.Load()
	if !ref.enabled || ttl <= 0 {
		return
	}
	e := &cacheEntry{res: res, mgen: ref.mgen, ggen: ref.ggen, expires: time.Now().UnixNano() + ttl}
	c.mu.Lock()
	if len(c.entries) >= maxQueryCacheEntries {
		c.evictLocked(db)
	}
	c.entries[ref.key] = e
	c.mu.Unlock()
}

// evictLocked drops expired and stale entries; if nothing qualified, one
// arbitrary entry is removed to make room.
func (c *queryCache) evictLocked(db *DB) {
	now := time.Now().UnixNano()
	ggen := db.globalGen.Load()
	dropped := false
	for k, e := range c.entries {
		if now >= e.expires || e.ggen != ggen {
			delete(c.entries, k)
			dropped = true
		}
	}
	if !dropped {
		for k := range c.entries {
			delete(c.entries, k)
			break
		}
	}
}

// normKey builds the canonical cache identity of a query. Field and
// group-by order are semantically relevant (column order) and kept; the
// tag filter is order-free and sorted. Every string component is
// length-prefixed, so no legal measurement, field, tag key or tag value
// (line-protocol escaping permits commas and '=' in all of them) can make
// two distinct queries collide on one key.
func normKey(q Query) string {
	var b strings.Builder
	frame := func(s string) {
		b.WriteString(strconv.Itoa(len(s)))
		b.WriteByte(':')
		b.WriteString(s)
	}
	frame(q.Measurement)
	startNS, endNS := rangeNS(q.Start, q.End)
	b.WriteString(strconv.FormatInt(startNS, 10))
	b.WriteByte(',')
	b.WriteString(strconv.FormatInt(endNS, 10))
	b.WriteByte(';')
	keys := make([]string, 0, len(q.Filter))
	for k := range q.Filter {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		frame(k)
		frame(q.Filter[k])
	}
	b.WriteByte(';')
	for _, f := range q.Fields {
		frame(f)
	}
	b.WriteByte(';')
	for _, t := range q.GroupByTags {
		frame(t)
	}
	b.WriteByte(';')
	b.WriteString(strconv.FormatInt(q.Every.Nanoseconds(), 10))
	b.WriteByte(';')
	frame(string(q.Agg))
	b.WriteString(strconv.FormatFloat(q.Percentile, 'g', -1, 64))
	b.WriteByte(';')
	b.WriteString(strconv.Itoa(q.Limit))
	return b.String()
}
