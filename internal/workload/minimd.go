package workload

import "math"

// MiniMD models Mantevo's miniMD molecular-dynamics proxy application, the
// workload of paper Fig. 3. Besides the hardware profile it produces the
// four application-level metric series the figure shows, sampled every 100
// iterations:
//
//   - runtime of the last 100 iterations (with periodic neighbor-list
//     rebuild spikes),
//   - pressure,
//   - temperature (equilibrating from the initial value),
//   - total energy (conserved up to a small drift).
//
// Values are in reduced Lennard-Jones units with miniMD's default initial
// temperature T* = 1.44 and density rho* = 0.8442; the trajectories are
// smooth deterministic functions plus bounded deterministic jitter, which is
// all the monitoring path cares about.
type MiniMD struct {
	Cores           int
	Atoms           int
	TotalIterations int
	// SecsPer100 is the nominal runtime of 100 iterations.
	SecsPer100 float64
}

// NewMiniMD returns a miniMD run with the given decomposition. Runtime per
// 100 iterations scales with atoms/cores (miniMD is O(N) per step with
// neighbor lists).
func NewMiniMD(cores, atoms, iterations int) *MiniMD {
	secs := 1.2 * float64(atoms) / 131072 * 8 / float64(cores)
	return &MiniMD{Cores: cores, Atoms: atoms, TotalIterations: iterations, SecsPer100: secs}
}

// Name implements Model.
func (w *MiniMD) Name() string { return "minimd" }

// Duration implements Model.
func (w *MiniMD) Duration() float64 {
	return float64(w.TotalIterations) / 100 * w.SecsPer100
}

// MemUsedKB implements Model.
func (w *MiniMD) MemUsedKB(t float64) uint64 {
	if t < 0 || t > w.Duration() {
		return 0
	}
	// ~ 400 bytes per atom (positions, velocities, forces, neighbor lists).
	return uint64(w.Atoms) * 400 / 1024
}

// ProfileAt implements Model. miniMD alternates force computation with
// neighbor-list rebuilds every 20 iterations; rebuild intervals have more
// memory traffic and fewer flops.
func (w *MiniMD) ProfileAt(t float64, core int) CPUProfile {
	if t < 0 || t > w.Duration() || core >= w.Cores {
		return IdleProfile()
	}
	iter := w.IterationsAt(t)
	rebuild := iter%20 >= 18 // rebuild window
	p := busyProfile(2400, 1.6)
	if rebuild {
		p.IPC = 1.1
		p.ScalarDP = 8e8
		p.SSEDP = 2e8
		p.MemBytes = 3.5e9
		p.L2Bytes = 6e9
		p.L3Bytes = 4e9
	} else {
		p.ScalarDP = 1.2e9
		p.SSEDP = 9e8
		p.MemBytes = 1.5e9
		p.L2Bytes = 5e9
		p.L3Bytes = 2e9
	}
	p.PowerWatts = idleWatts + 11
	return p
}

// IterationsAt returns the completed iteration count at job time t.
func (w *MiniMD) IterationsAt(t float64) int {
	if t <= 0 {
		return 0
	}
	it := int(t / w.SecsPer100 * 100)
	if it > w.TotalIterations {
		it = w.TotalIterations
	}
	return it
}

// Sample is one application-level measurement block, emitted every 100
// iterations like the instrumented miniMD of the paper.
type Sample struct {
	T          float64 // job time of emission in seconds
	Iteration  int
	Runtime100 float64 // seconds spent on the last 100 iterations
	Temp       float64
	Pressure   float64
	Energy     float64
}

// StateAt returns the thermodynamic observables at an iteration.
func (w *MiniMD) StateAt(iter int) (temp, pressure, energy float64) {
	x := float64(iter)
	// Equilibration: kinetic temperature falls from T0=1.44 toward 0.72 as
	// kinetic and potential energy equipartition, with small fluctuations.
	temp = 0.72 + 0.72*math.Exp(-x/150) + 0.015*math.Sin(x/13)*jitter(x, 0.3)
	// Virial pressure fluctuates around the LJ melt value.
	pressure = 5.9 + 0.25*math.Sin(x/23) + 0.1*(jitter(x*1.7, 1)-1)
	// Total energy: conserved with a tiny integrator drift.
	energy = -4.61 + 2e-5*x + 0.004*(jitter(x*2.3, 1)-1)
	return temp, pressure, energy
}

// Runtime100At returns the wall time of the 100-iteration block ending at
// the given iteration, including the neighbor-rebuild overhead spikes
// visible in Fig. 3 (left).
func (w *MiniMD) Runtime100At(iter int) float64 {
	base := w.SecsPer100
	spike := 0.0
	if (iter/100)%5 == 4 { // every 5th block hits extra rebuild cost
		spike = base * 0.12
	}
	return base*jitter(float64(iter)*0.7, 0.03)*(1) + spike
}

// Samples returns the application-level samples emitted in the window
// (t0, t1] of job time: one per 100-iteration boundary crossed.
func (w *MiniMD) Samples(t0, t1 float64) []Sample {
	if t1 <= t0 {
		return nil
	}
	i0 := w.IterationsAt(t0)
	i1 := w.IterationsAt(t1)
	var out []Sample
	for block := i0/100 + 1; block*100 <= i1; block++ {
		iter := block * 100
		temp, press, energy := w.StateAt(iter)
		out = append(out, Sample{
			T:          float64(iter) / 100 * w.SecsPer100,
			Iteration:  iter,
			Runtime100: w.Runtime100At(iter),
			Temp:       temp,
			Pressure:   press,
			Energy:     energy,
		})
	}
	return out
}
