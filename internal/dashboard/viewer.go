package dashboard

import (
	"fmt"
	"html"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/router"
	"repro/internal/tsdb"
)

// JobSource provides the job information the viewer shows; implemented by
// *router.JobRegistry.
type JobSource interface {
	Running() []*router.Job
	Get(id string) (*router.Job, bool)
	History() []*router.Job
}

// Viewer is the web front-end: the Grafana replacement. It serves
//
//	GET /                   admin view: running jobs with thumbnails
//	GET /job/<id>           user view: evaluation header + panels
//	GET /api/dashboard/<id> generated dashboard JSON (Grafana model)
//
// The views are generated per request from templates and live data, which
// reproduces the "automatically updated" property of the paper's front-end.
//
// All metric reads go through the Querier, so the viewer runs either
// in-process with the store (LocalQuerier) or as its own service against a
// remote lms-db (tsdb.Client) — the paper's topology, where web front-end
// and metrics database are separate services on separate hosts.
type Viewer struct {
	Querier tsdb.Querier
	DBName  string
	Jobs    JobSource
	Agent   *Agent
	// Now overrides the clock (tests).
	Now func() time.Time

	mux *http.ServeMux
}

// NewViewer wires the handler.
func NewViewer(qr tsdb.Querier, dbName string, jobs JobSource, agent *Agent) *Viewer {
	v := &Viewer{Querier: qr, DBName: dbName, Jobs: jobs, Agent: agent}
	mux := http.NewServeMux()
	mux.HandleFunc("/", v.handleAdmin)
	mux.HandleFunc("/job/", v.handleJob)
	mux.HandleFunc("/api/dashboard/", v.handleDashboardJSON)
	v.mux = mux
	return v
}

// ServeHTTP implements http.Handler.
func (v *Viewer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	v.mux.ServeHTTP(w, r)
}

func (v *Viewer) now() time.Time {
	if v.Now != nil {
		return v.Now()
	}
	return time.Now()
}

// queryEnd is the end-of-range timestamp used for the panels of a still
// running job. It is rounded down to the second so that repeated refreshes
// of the same panel within the tsdb's query-cache TTL normalize to the
// same query and are served from the cache instead of re-aggregating.
func (v *Viewer) queryEnd() time.Time {
	return v.now().Truncate(time.Second)
}

func jobMeta(j *router.Job) analysis.JobMeta {
	return analysis.JobMeta{
		ID:    j.ID,
		User:  j.User,
		Nodes: append([]string(nil), j.Nodes...),
		Start: j.Start,
		End:   j.End,
	}
}

// handleAdmin renders the administrator main view: all currently running
// jobs with a thumbnail sparkline and key numbers.
func (v *Viewer) handleAdmin(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	jobs := v.Jobs.Running()
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].ID < jobs[j].ID })
	var b strings.Builder
	b.WriteString("<html><head><title>LMS - running jobs</title></head><body><h1>Running jobs</h1><pre>\n")
	if len(jobs) == 0 {
		b.WriteString("no running jobs\n")
	}
	for _, j := range jobs {
		end := v.queryEnd()
		// Built as an AST, not a query string: against a LocalQuerier the
		// statement executes directly on the Select engine.
		st := tsdb.SelectStatement(tsdb.Query{
			Measurement: "likwid_mem_dp",
			Filter:      tsdb.TagFilter{"jobid": j.ID},
			Start:       j.Start,
			End:         end,
			Every:       time.Minute,
		}, tsdb.AggCol{Field: "dp_mflop_s", Agg: tsdb.AggMean})
		thumb := "(no data)"
		resp, err := v.Querier.Query(r.Context(), tsdb.Request{
			Database: v.DBName, Statements: []tsdb.Statement{st},
		})
		if err == nil && len(resp.Results) > 0 && len(resp.Results[0].Series) > 0 {
			s := summarize(resp.Results[0].Series[0])
			thumb = fmt.Sprintf("%s last %.4g MFLOP/s", Sparkline(s.Values), s.Last)
		}
		fmt.Fprintf(&b, "<a href=\"/job/%s\">job %-12s</a> user %-8s nodes %-3d started %s  %s\n",
			html.EscapeString(j.ID), html.EscapeString(j.ID), html.EscapeString(j.User),
			len(j.Nodes), j.Start.Format("15:04:05"), thumb)
	}
	b.WriteString("</pre></body></html>\n")
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

// handleJob renders the user view of one job: the evaluation header (Fig. 2)
// followed by the rendered panels (Fig. 3 / Fig. 4 style timelines).
func (v *Viewer) handleJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/job/")
	job, ok := v.Jobs.Get(id)
	if !ok {
		http.NotFound(w, r)
		return
	}
	meta := jobMeta(job)
	if meta.End.IsZero() {
		meta.End = v.queryEnd()
	}
	d, err := v.Agent.GenerateJobDashboardContext(r.Context(), meta)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	text, err := RenderDashboard(r.Context(), v.Querier, v.DBName, d)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, "<html><head><title>LMS - job %s</title></head><body><pre>\n%s</pre></body></html>\n",
		html.EscapeString(id), html.EscapeString(text))
}

// handleDashboardJSON exposes the generated Grafana-model JSON, which is
// what the original agent would POST to Grafana's dashboard API.
func (v *Viewer) handleDashboardJSON(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/api/dashboard/")
	job, ok := v.Jobs.Get(id)
	if !ok {
		http.NotFound(w, r)
		return
	}
	meta := jobMeta(job)
	if meta.End.IsZero() {
		meta.End = v.queryEnd()
	}
	d, err := v.Agent.GenerateJobDashboardContext(r.Context(), meta)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	out, err := d.MarshalIndent()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(out)
}
