package tsdb

// Regression tests for the PR-6 ingest/query hardening sweep: oversized
// /write bodies are refused with 413 instead of silently truncated,
// precision scaling rejects timestamp overflow, the admission gate sheds
// load with 429 + Retry-After, truncated chunked /query streams are
// detected on both ends, and /metrics agrees with oracle counts.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/lineproto"
)

func TestHTTPWriteOversizedBody413(t *testing.T) {
	store := NewStore()
	h := NewHandler(store)
	h.MaxBodyBytes = 64
	srv := httptest.NewServer(h)
	defer srv.Close()

	// A body over the cap that happens to end exactly on a line boundary:
	// the old LimitReader truncation would have parsed the prefix cleanly
	// and acknowledged a partial batch.
	var b strings.Builder
	for i := 0; b.Len() <= 64; i++ {
		fmt.Fprintf(&b, "cpu value=%d %d\n", i, int64(i+1)*1e9)
	}
	resp, err := http.Post(srv.URL+"/write?db=lms", "text/plain", strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	if db := store.DB("lms"); db != nil && db.PointCount() != 0 {
		t.Fatalf("refused write stored %d points", db.PointCount())
	}

	// At the cap is still accepted.
	line := "cpu value=1 1000000000\n"
	h.MaxBodyBytes = int64(len(line))
	resp, err = http.Post(srv.URL+"/write?db=lms", "text/plain", strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("at-cap write status %d, want 204", resp.StatusCode)
	}
}

func TestHTTPWritePrecisionOverflow(t *testing.T) {
	store, srv := newTestServer(t)
	// 9e15 hours of Unix time does not fit in int64 nanoseconds; the old
	// unchecked multiply wrapped it into a garbage timestamp and stored it.
	resp, err := http.Post(srv.URL+"/write?db=lms&precision=h", "text/plain",
		strings.NewReader("cpu value=1 9000000000000000\n"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (body %s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "overflow") {
		t.Fatalf("error does not mention overflow: %s", body)
	}
	if db := store.DB("lms"); db != nil && db.PointCount() != 0 {
		t.Fatalf("refused write stored %d points", db.PointCount())
	}
	// A sane hour-precision timestamp still works.
	resp, err = http.Post(srv.URL+"/write?db=lms&precision=h", "text/plain",
		strings.NewReader("cpu value=1 100\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("valid hour write status %d", resp.StatusCode)
	}
	res, err := store.DB("lms").Select(Query{Measurement: "cpu"})
	if err != nil {
		t.Fatal(err)
	}
	if got := res[0].Rows[0].Time; got != time.Unix(0, 0).Add(100*time.Hour).UTC() {
		t.Fatalf("time %v, want 100h after epoch", got)
	}
}

func TestHTTPWriteAdmissionShed(t *testing.T) {
	store := NewStore()
	h := NewHandler(store)
	h.SetAdmission(0, 16) // byte budget far below the body below
	srv := httptest.NewServer(h)
	defer srv.Close()

	body := strings.Repeat("cpu value=1 1000000000\n", 4)
	resp, err := http.Post(srv.URL+"/write?db=lms", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	mb := scrapeMetrics(t, srv.URL)
	if !strings.Contains(mb, "lms_http_requests_shed_total 1") {
		t.Fatalf("shed not counted on /metrics:\n%s", grepMetrics(mb, "shed"))
	}
	if !strings.Contains(mb, "lms_http_inflight_requests 0") {
		t.Fatalf("in-flight not released:\n%s", grepMetrics(mb, "inflight"))
	}

	// Clearing the gate admits the same request again.
	h.SetAdmission(0, 0)
	resp, err = http.Post(srv.URL+"/write?db=lms", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("post-clear write status %d", resp.StatusCode)
	}
}

// TestClientDetectsTruncatedStream pins the client half of the chunked
// truncation fix: a 2xx body with fewer results than statements is a
// retryable error, not a silently short Response.
func TestClientDetectsTruncatedStream(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if calls.Add(1) == 1 {
			// First attempt: one result for a two-statement query.
			fmt.Fprintln(w, `{"results":[{"statement_id":0}]}`)
			return
		}
		fmt.Fprintln(w, `{"results":[{"statement_id":0}]}`)
		fmt.Fprintln(w, `{"results":[{"statement_id":1}]}`)
	}))
	defer srv.Close()

	c := &Client{BaseURL: srv.URL, Database: "lms", RetryBackoff: time.Millisecond}
	resp, err := c.Query(context.Background(), Request{
		RawQuery: "SELECT value FROM cpu; SELECT value FROM mem",
		Chunked:  true,
	})
	if err != nil {
		t.Fatalf("retry did not recover the truncated stream: %v", err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("results %d, want 2", len(resp.Results))
	}
	if calls.Load() != 2 {
		t.Fatalf("server calls %d, want 2 (one truncated, one retry)", calls.Load())
	}

	// With retries disabled the truncation surfaces as an error.
	calls.Store(0)
	c2 := &Client{BaseURL: srv.URL, Database: "lms", MaxRetries: -1}
	_, err = c2.Query(context.Background(), Request{
		RawQuery: "SELECT value FROM cpu; SELECT value FROM mem",
	})
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("err = %v, want truncated-stream error", err)
	}
}

// TestHTTPQueryTruncationErrorDoc pins the server half: when statement
// execution dies mid-stream the handler appends an explicit error
// document instead of ending the stream as if it were complete.
func TestHTTPQueryTruncationErrorDoc(t *testing.T) {
	store := NewStore()
	db := store.CreateDatabase("lms")
	mustWrite(t, db, "cpu value=1 1000000000")
	h := NewHandler(store)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // execStatements fails immediately with context.Canceled
	req := httptest.NewRequest(http.MethodGet,
		"/query?db=lms&chunked=true&q="+
			"SELECT+value+FROM+cpu", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if !strings.Contains(rec.Body.String(), "stream truncated") {
		t.Fatalf("no trailing error document:\n%s", rec.Body.String())
	}

	// Same for the non-chunked path.
	req = httptest.NewRequest(http.MethodGet,
		"/query?db=lms&q=SELECT+value+FROM+cpu", nil).WithContext(ctx)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if !strings.Contains(rec.Body.String(), "stream truncated") {
		t.Fatalf("non-chunked: no error document:\n%s", rec.Body.String())
	}
}

// TestMetricsOracle writes and queries through the handler and asserts the
// /metrics document against independently known counts.
func TestMetricsOracle(t *testing.T) {
	store := NewStore()
	h := NewHandler(store)
	srv := httptest.NewServer(h)
	defer srv.Close()

	body := "cpu value=0.5 1000000000\ncpu value=0.7 2000000000\nmem value=3 1000000000\n"
	resp, err := http.Post(srv.URL+"/write?db=lms", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("write status %d", resp.StatusCode)
	}

	c := &Client{BaseURL: srv.URL, Database: "lms"}
	for i := 0; i < 3; i++ { // identical queries: 1 miss + 2 cache hits
		if _, err := c.QueryString("SELECT mean(value) FROM cpu"); err != nil {
			t.Fatal(err)
		}
	}

	mb := scrapeMetrics(t, srv.URL)
	for _, want := range []string{
		"lms_ingest_points_total 3",
		"lms_ingest_batches_total 1",
		fmt.Sprintf("lms_ingest_bytes_total %d", len(body)),
		"lms_dropped_points_total 0",
		`lms_db_points{db="lms"} 3`,
		`lms_db_query_cache_hits_total{db="lms"} 2`,
		`lms_db_query_cache_misses_total{db="lms"} 1`,
		"lms_query_seconds_count 3",
	} {
		if !strings.Contains(mb, want) {
			t.Errorf("/metrics missing %q:\n%s", want, grepMetrics(mb, "lms_"))
		}
	}

	// Per-shard resident points sum to the database total.
	sum := 0
	for _, n := range store.DB("lms").shardPointCounts() {
		sum += n
	}
	if sum != 3 {
		t.Fatalf("shard point counts sum to %d, want 3", sum)
	}

	// A refused batch counts drops, not ingest.
	err = store.DB("lms").WriteBatch([]lineproto.Point{{Measurement: ""}})
	if err == nil {
		t.Fatal("invalid point accepted")
	}
	mb = scrapeMetrics(t, srv.URL)
	if !strings.Contains(mb, "lms_dropped_points_total 1") {
		t.Errorf("drop not counted:\n%s", grepMetrics(mb, "dropped"))
	}
	if !strings.Contains(mb, "lms_ingest_points_total 3") {
		t.Errorf("refused batch counted as ingest:\n%s", grepMetrics(mb, "ingest"))
	}
}

func TestSlowQueryLogging(t *testing.T) {
	store := NewStore()
	db := store.CreateDatabase("lms")
	mustWrite(t, db, "cpu value=1 1000000000")
	h := NewHandler(store)
	h.SlowQueryThreshold = time.Nanosecond // everything is slow
	var logged atomic.Int64
	h.Logf = func(format string, args ...interface{}) {
		if strings.Contains(fmt.Sprintf(format, args...), "slow query") {
			logged.Add(1)
		}
	}
	srv := httptest.NewServer(h)
	defer srv.Close()

	c := &Client{BaseURL: srv.URL, Database: "lms"}
	if _, err := c.QueryString("SELECT value FROM cpu"); err != nil {
		t.Fatal(err)
	}
	if logged.Load() != 1 {
		t.Fatalf("slow-query log lines = %d, want 1", logged.Load())
	}
	if !strings.Contains(scrapeMetrics(t, srv.URL), "lms_slow_queries_total 1") {
		t.Fatal("lms_slow_queries_total not incremented")
	}
}

// mustWrite parses one or more line-protocol lines and writes them as a
// batch.
func mustWrite(t *testing.T, db *DB, lines string) {
	t.Helper()
	pts, err := lineproto.Parse([]byte(lines))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.WriteBatch(pts); err != nil {
		t.Fatal(err)
	}
}

// scrapeMetrics fetches and returns the /metrics document.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// grepMetrics filters a metrics document to lines containing substr, for
// readable failure messages.
func grepMetrics(doc, substr string) string {
	var out []string
	for _, line := range strings.Split(doc, "\n") {
		if strings.Contains(line, substr) && !strings.HasPrefix(line, "#") {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
