// Package core wires the LIKWID Monitoring Stack together: database,
// metrics router, pub/sub publisher, dashboard agent, web viewer and
// analysis (paper Fig. 1). The components stay loosely coupled — each is
// usable standalone through its own package — and core provides the
// "complete stack" composition plus the cluster simulation driver
// (sim.go) that stands in for real compute nodes.
package core

import (
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/dashboard"
	"repro/internal/pubsub"
	"repro/internal/router"
	"repro/internal/tsdb"
	"repro/internal/tsdb/durable"
)

// StackConfig configures a full LMS deployment.
type StackConfig struct {
	// DBName is the primary database (default "lms").
	DBName string
	// PerUserDBs enables duplication of job metrics into "user_<name>"
	// databases.
	PerUserDBs bool
	// PubSubAddr, when non-empty, starts the ZeroMQ-style publisher on the
	// address (e.g. "127.0.0.1:0").
	PubSubAddr string
	// PubSubHWM is the per-subscriber high-water mark (0 = default).
	PubSubHWM int
	// Retention prunes data older than this from the primary DB (0 = keep).
	Retention time.Duration
	// DataDir enables the durable storage engine (WAL + on-disk columnar
	// checkpoints, DESIGN.md §9): every database lives under this
	// directory and survives restarts. Empty keeps the stack in memory
	// only. Call Stack.Close on shutdown so the final checkpoint lands.
	DataDir string
	// FsyncPolicy selects when WAL appends reach stable storage when
	// DataDir is set: "batch" (default; sync before acknowledging every
	// batch), "interval" or "off".
	FsyncPolicy string
	// TSDBShards is the lock-shard count per database (0 = GOMAXPROCS).
	TSDBShards int
	// QueryWorkers bounds the per-Select aggregation fan-out of the read
	// path (0 = GOMAXPROCS, 1 = serial engine).
	QueryWorkers int
	// PeakMemBWMBs / PeakDPMFlops parameterize the pattern decision tree.
	PeakMemBWMBs float64
	PeakDPMFlops float64
	// Now overrides the router clock (simulations inject simulated time).
	Now func() time.Time
}

// Stack is one assembled LMS instance.
type Stack struct {
	Store     *tsdb.Store
	DB        *tsdb.DB
	Router    *router.Router
	Publisher *pubsub.Publisher
	Evaluator *analysis.Evaluator
	Agent     *dashboard.Agent
	Viewer    *dashboard.Viewer

	// Querier is the read-side API every consumer of this stack is wired
	// through. In-process stacks get a LocalQuerier over Store; the same
	// consumers accept a tsdb.Client instead to read from a remote lms-db.
	Querier tsdb.Querier

	DBHandler *tsdb.Handler // InfluxDB-compatible HTTP API of the store
	cfg       StackConfig
}

// NewStack builds and wires all components.
func NewStack(cfg StackConfig) (*Stack, error) {
	if cfg.DBName == "" {
		cfg.DBName = "lms"
	}
	fsync, err := durable.ParseFsyncPolicy(cfg.FsyncPolicy)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	store, err := tsdb.OpenStore(tsdb.StoreOptions{
		ShardsPerDB:       cfg.TSDBShards,
		QueryWorkersPerDB: cfg.QueryWorkers,
		Durability:        tsdb.Durability{Dir: cfg.DataDir, Fsync: fsync},
	})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	// Past this point a constructor failure must close the store, or the
	// recovered databases' WAL descriptors (and the directory lock) leak.
	db, err := store.OpenDatabase(cfg.DBName)
	if err != nil {
		_ = store.Close()
		return nil, fmt.Errorf("core: %w", err)
	}
	if cfg.Retention > 0 {
		db.SetRetention(cfg.Retention)
	}

	var pub *pubsub.Publisher
	if cfg.PubSubAddr != "" {
		pub, err = pubsub.NewPublisher(cfg.PubSubAddr, cfg.PubSubHWM)
		if err != nil {
			_ = store.Close()
			return nil, fmt.Errorf("core: %w", err)
		}
	}

	rcfg := router.Config{
		Primary:   router.LocalSink{DB: db},
		Publisher: pub,
		Now:       cfg.Now,
	}
	if cfg.PerUserDBs {
		rcfg.UserSink = func(user string) router.Sink {
			return router.LocalSink{DB: store.CreateDatabase("user_" + user)}
		}
	}
	rt, err := router.New(rcfg)
	if err != nil {
		if pub != nil {
			_ = pub.Close()
		}
		_ = store.Close()
		return nil, err
	}

	qr := tsdb.LocalQuerier{Store: store}
	ev := &analysis.Evaluator{
		Querier:      qr,
		Database:     cfg.DBName,
		PeakMemBWMBs: cfg.PeakMemBWMBs,
		PeakDPMFlops: cfg.PeakDPMFlops,
		Now:          cfg.Now,
	}
	agent := &dashboard.Agent{Querier: qr, Database: cfg.DBName, Evaluator: ev}
	viewer := dashboard.NewViewer(qr, cfg.DBName, rt.Jobs(), agent)
	if cfg.Now != nil {
		viewer.Now = cfg.Now
	}

	return &Stack{
		Store:     store,
		DB:        db,
		Router:    rt,
		Publisher: pub,
		Evaluator: ev,
		Agent:     agent,
		Viewer:    viewer,
		Querier:   qr,
		DBHandler: tsdb.NewHandler(store),
		cfg:       cfg,
	}, nil
}

// DBName returns the primary database name.
func (s *Stack) DBName() string { return s.cfg.DBName }

// Close releases network resources (the publisher) and closes the store:
// on a durable stack (StackConfig.DataDir) that flushes the WAL and
// writes the final checkpoint, so skipping Close risks replaying the WAL
// tail on the next start instead of loading one clean checkpoint.
func (s *Stack) Close() error {
	var perr error
	if s.Publisher != nil {
		perr = s.Publisher.Close()
	}
	if serr := s.Store.Close(); serr != nil {
		return serr
	}
	return perr
}
