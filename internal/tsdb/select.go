package tsdb

// The two-phase, lock-light query engine behind DB.Select (DESIGN.md §6).
//
// Phase 1 (snapshotSelect) takes the shard lock of the queried measurement
// in *read* mode and only long enough to collect slice headers of the
// matching, already-sorted columnar runs (column.go, DESIGN.md §8) — the
// write path keeps every series sorted and never mutates a published
// backing array (see the series invariants in tsdb.go), so the headers
// stay valid after the lock is released. The time-range cut and, for raw
// queries, the row Limit are pushed into this phase: rows a query cannot
// return are never snapshotted.
//
// Phase 2 (executeGroups) buckets the runs by the group-by tag combination
// and runs filtering, window bucketing and aggregation outside any lock,
// fanning the groups out over a bounded worker pool (DB.SetQueryWorkers,
// StackConfig.QueryWorkers). Aggregates are computed as per-run partials
// (filled by the vectorized column folds in agg.go) merged in a fixed
// order, so the result is byte-identical no matter how many workers run —
// the serial engine is simply workers=1.

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/lineproto"
)

// colView is the read-only window one snapshotted run exposes over one
// requested column: sliced typed-value headers plus the run's full
// presence bitmap with the slice offset (presence bitmaps are
// copy-on-write on the writer side, so aliasing them is safe). ok is
// false when the run never saw the field.
type colView struct {
	ok    bool
	kind  lineproto.ValueKind
	mixed bool
	off   int // row offset of this view within the presence bitmap

	floats  []float64
	ints    []int64
	strs    []uint32
	vals    []lineproto.Value
	present []uint64 // nil = dense
}

// has reports whether local row i (0-based within the view) has a value.
// A view over a run that never saw the field (ok == false) has no rows.
func (v *colView) has(i int) bool {
	return v.ok && (v.present == nil || bitGet(v.present, v.off+i))
}

// valueAt reconstructs the lineproto.Value of local row i.
func (v *colView) valueAt(i int, strs []string) (lineproto.Value, bool) {
	if !v.has(i) {
		return lineproto.Value{}, false
	}
	if v.mixed {
		return v.vals[i], true
	}
	switch v.kind {
	case lineproto.KindFloat:
		return lineproto.Float(v.floats[i]), true
	case lineproto.KindInt:
		return lineproto.Int(v.ints[i]), true
	case lineproto.KindBool:
		return lineproto.Bool(v.ints[i] != 0), true
	default:
		return lineproto.String(strs[v.strs[i]]), true
	}
}

// firstPresent returns the first local row in [lo, hi) carrying a value,
// or -1.
func (v *colView) firstPresent(lo, hi int) int {
	if v.present == nil {
		if lo < hi {
			return lo
		}
		return -1
	}
	for i := lo; i < hi; i++ {
		if bitGet(v.present, v.off+i) {
			return i
		}
	}
	return -1
}

// lastPresent returns the last local row in [lo, hi) carrying a value, or
// -1.
func (v *colView) lastPresent(lo, hi int) int {
	if v.present == nil {
		if lo < hi {
			return hi - 1
		}
		return -1
	}
	for i := hi - 1; i >= lo; i-- {
		if bitGet(v.present, v.off+i) {
			return i
		}
	}
	return -1
}

// runSnap is one run's in-range snapshot: the timestamp window plus one
// colView per requested column (parallel to the query column list). A
// compressed run is snapshotted as its immutable chunk pointer instead
// (comp != nil, ts/cols empty); phase 2 decodes it into scratch-backed
// views (materializeSnap, compress.go) before aggregation starts.
type runSnap struct {
	ts   []int64
	cols []colView
	comp *compRun
}

// seriesRun is one matching series' snapshotted run.
type seriesRun struct {
	key  string // series key: deterministic ordering across map iterations
	tags map[string]string
	snap runSnap
}

// selectGroup is one result series in the making: every run whose tags
// project to the same group-by combination.
type selectGroup struct {
	tags map[string]string
	runs []runSnap
}

// hasComp reports whether any snapshotted run still needs decoding.
func (g *selectGroup) hasComp() bool {
	for i := range g.runs {
		if g.runs[i].comp != nil {
			return true
		}
	}
	return false
}

// snapshotSelect is phase 1: resolve the column set and snapshot the
// matching runs' column windows, grouped by the group-by tag projection.
// Only the shard read lock is held, and only while slicing headers. The
// returned strs slice resolves interned string ids (append-only on the
// writer side, so the header stays valid outside the lock).
//
// prof, when non-nil (EXPLAIN ANALYZE, profile.go), counts the runs
// admitted vs pruned on time bounds and the rows examined; nil — every
// ordinary query — costs one predictable branch per run.
func (db *DB) snapshotSelect(q Query, prof *selectProf) ([]string, []string, []*selectGroup, error) {
	startNS, endNS := rangeNS(q.Start, q.End)
	// Raw all-column queries return at most Limit rows per result series,
	// and every stored row carries at least one field (Validate enforces
	// it), so every snapshotted row produces an output row and each run can
	// be clamped to Limit during the snapshot. With an explicit field
	// projection a row may lack all requested columns and emit nothing, so
	// the clamp would drop matching rows further down the run — those
	// queries truncate at emission instead.
	rawLimit := 0
	if q.Limit > 0 && (q.Agg == "" || q.Agg == AggNone) && len(q.Fields) == 0 {
		rawLimit = q.Limit
	}

	sh := db.shardFor(q.Measurement)
	sh.mu.RLock()
	m, ok := sh.measurements[q.Measurement]
	if !ok {
		sh.mu.RUnlock()
		return nil, nil, nil, ErrNoMeasurement
	}
	cols := q.Fields
	if len(cols) == 0 {
		cols = make([]string, 0, len(m.fields))
		for k := range m.fields {
			cols = append(cols, k)
		}
		sort.Strings(cols)
	}
	strs := m.strs.vals
	runs := make([]seriesRun, 0, len(m.series))
	for key, sr := range m.series {
		if !q.Filter.matches(sr.tags) {
			continue
		}
		for _, run := range sr.runs {
			if c := run.comp; c != nil {
				// Compressed run: the chunk header carries the time
				// bounds, the chunk itself is immutable — snapshotting is
				// one pointer. The precise range cut (and the discovery
				// that a bounds-overlapping run holds no row in range)
				// happens at decode time in phase 2.
				if c.minTS > endNS || c.maxTS < startNS {
					if prof != nil {
						prof.RunsPruned++
					}
					continue
				}
				if prof != nil {
					prof.RunsScanned++
					prof.PointsExamined += int64(c.n)
				}
				runs = append(runs, seriesRun{key: key, tags: sr.tags, snap: runSnap{comp: c}})
				continue
			}
			lo := sort.Search(len(run.ts), func(i int) bool { return run.ts[i] >= startNS })
			hi := sort.Search(len(run.ts), func(i int) bool { return run.ts[i] > endNS })
			if lo >= hi {
				if prof != nil {
					prof.RunsPruned++
				}
				continue
			}
			if prof != nil {
				prof.RunsScanned++
			}
			if rawLimit > 0 && hi-lo > rawLimit {
				hi = lo + rawLimit
			}
			if prof != nil {
				prof.PointsExamined += int64(hi - lo)
			}
			snap := runSnap{ts: run.ts[lo:hi], cols: make([]colView, len(cols))}
			for ci, name := range cols {
				rci := run.colByName(name)
				if rci < 0 {
					continue
				}
				rc := &run.cols[rci]
				v := &snap.cols[ci]
				v.ok = true
				v.kind = rc.kind
				v.mixed = rc.mixed
				v.off = lo
				v.present = rc.present
				switch {
				case rc.mixed:
					v.vals = rc.vals[lo:hi]
				case rc.kind == lineproto.KindFloat:
					v.floats = rc.floats[lo:hi]
				case rc.kind == lineproto.KindString:
					v.strs = rc.strs[lo:hi]
				default:
					v.ints = rc.ints[lo:hi]
				}
			}
			runs = append(runs, seriesRun{key: key, tags: sr.tags, snap: snap})
		}
	}
	sh.mu.RUnlock()

	// Everything below operates on immutable snapshots, outside the lock.
	// The sort must be stable: runs of one series keep their creation order,
	// so timestamp ties across runs resolve in insertion order.
	sort.SliceStable(runs, func(i, j int) bool { return runs[i].key < runs[j].key })
	groups := map[string]*selectGroup{}
	var order []string
	for _, r := range runs {
		gtags := map[string]string{}
		for _, k := range q.GroupByTags {
			gtags[k] = r.tags[k]
		}
		key := seriesKey(gtags)
		g, ok := groups[key]
		if !ok {
			g = &selectGroup{tags: gtags}
			groups[key] = g
			order = append(order, key)
		}
		g.runs = append(g.runs, r.snap)
	}
	sort.Strings(order)
	ordered := make([]*selectGroup, len(order))
	for i, key := range order {
		ordered[i] = groups[key]
	}
	return cols, strs, ordered, nil
}

// executeGroups is phase 2: aggregate each group into its result series,
// fanning out across the DB's bounded worker pool. Group i always lands in
// slot i, so the output order (sorted group keys) is deterministic. The
// context is checked between group dispatches and by each pool worker
// before it starts aggregating, so cancellation is observed at
// run-aggregation-task granularity: the task in flight finishes, the rest
// never start.
func (db *DB) executeGroups(ctx context.Context, q Query, cols, strs []string, groups []*selectGroup, prof *selectProf) ([]Series, error) {
	if len(groups) == 0 {
		return nil, nil
	}
	if prof != nil {
		// Count the decode work up front, before the fan-out: every
		// compressed run admitted by phase 1 is decoded by
		// materializeGroup (one timestamp chunk plus one per column), so
		// the profile needs no atomics inside the workers.
		for _, g := range groups {
			for i := range g.runs {
				if c := g.runs[i].comp; c != nil {
					prof.ChunksDecoded += 1 + len(c.cols)
				}
			}
		}
	}
	out := make([]Series, len(groups))
	// drop[i] marks a group whose runs all decoded to zero in-range rows:
	// phase 1 admitted its compressed runs on chunk time bounds alone, but
	// the raw path would never have snapshotted (or grouped) them, so the
	// group must not surface. The filter below keeps slot order, so the
	// output stays deterministic.
	drop := make([]bool, len(groups))
	run := func(i int) {
		g := groups[i]
		if g.hasComp() {
			// Decode compressed runs into a pooled per-worker scratch
			// arena. The arena is recycled only after executeGroup is done
			// with the views; the emitted Series copies every value out,
			// so nothing aliases the arena afterwards.
			a := arenaPool.Get().(*decodeArena)
			a.reset()
			if materializeGroup(g, q, cols, len(strs), a) {
				out[i] = executeGroup(q, cols, strs, g)
			} else {
				drop[i] = true
			}
			arenaPool.Put(a)
			return
		}
		out[i] = executeGroup(q, cols, strs, g)
	}
	filter := func() []Series {
		kept := out[:0]
		for i := range out {
			if !drop[i] {
				kept = append(kept, out[i])
			}
		}
		return kept
	}
	if len(groups) == 1 || db.queryWorkers <= 1 {
		for i := range groups {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			run(i)
		}
		return filter(), nil
	}
	// Bounded fan-out: a group runs on a pool slot when one is free and
	// inline otherwise, so a query never queues behind itself and the
	// goroutine count stays capped across concurrent Selects. The channel
	// is captured once so acquire and release always pair on the same pool
	// even if SetQueryWorkers swaps it mid-flight.
	qsem := db.qsem
	var wg sync.WaitGroup
	for i := range groups {
		if ctx.Err() != nil {
			break
		}
		select {
		case qsem <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-qsem }()
				if ctx.Err() != nil {
					return
				}
				run(i)
			}(i)
		default:
			run(i)
		}
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return filter(), nil
}

// executeGroup renders one result series from its snapshot runs.
func executeGroup(q Query, cols, strs []string, g *selectGroup) Series {
	res := Series{Name: q.Measurement, Tags: g.tags, Columns: cols}
	switch {
	case q.Agg == "" || q.Agg == AggNone:
		res.Rows = emitRaw(g.runs, cols, strs, q.Limit)
	case q.Every > 0:
		startNS, endNS := rangeNS(q.Start, q.End)
		res.Rows = windowAggregateRuns(g.runs, cols, strs, q.Agg, q.Percentile, q.Every, startNS, endNS, q.Limit)
	default:
		vals := make([]*lineproto.Value, len(cols))
		for ci := range cols {
			// Aggregation pushdown: one partial per run, merged in run
			// order (count/sum/min/max/mean merge exactly; percentile
			// merges sorted value runs). A single-run group folds straight
			// into the final partial.
			p := newPartial(q.Agg, q.Percentile)
			if len(g.runs) == 1 {
				foldView(p, &g.runs[0], ci, 0, len(g.runs[0].ts), strs)
				p.finalize()
			} else {
				for ri := range g.runs {
					rp := newPartial(q.Agg, q.Percentile)
					foldView(rp, &g.runs[ri], ci, 0, len(g.runs[ri].ts), strs)
					rp.finalize()
					p.merge(rp)
				}
			}
			if v, ok := p.result(); ok {
				vv := v
				vals[ci] = &vv
			}
		}
		t := q.Start
		if t.IsZero() {
			t = time.Unix(0, minFirstT(g.runs)).UTC()
		}
		res.Rows = append(res.Rows, Row{Time: t, Values: vals})
	}
	return res
}

// emitRaw merges the sorted runs by timestamp (stable: lower run index
// first on ties) and projects the requested columns, stopping as soon as
// limit rows were produced.
func emitRaw(runs []runSnap, cols, strs []string, limit int) []Row {
	var out []Row
	emit := func(rs *runSnap, i int) bool {
		vals := make([]*lineproto.Value, len(cols))
		any := false
		for ci := range cols {
			if v, ok := rs.cols[ci].valueAt(i, strs); ok {
				vv := v
				vals[ci] = &vv
				any = true
			}
		}
		if any {
			out = append(out, Row{Time: time.Unix(0, rs.ts[i]).UTC(), Values: vals})
		}
		return limit > 0 && len(out) >= limit
	}
	if len(runs) == 1 {
		rs := &runs[0]
		for i := range rs.ts {
			if emit(rs, i) {
				break
			}
		}
		return out
	}
	idx := make([]int, len(runs))
	for {
		best := -1
		for ri := range runs {
			if idx[ri] >= len(runs[ri].ts) {
				continue
			}
			if best < 0 || runs[ri].ts[idx[ri]] < runs[best].ts[idx[best]] {
				best = ri
			}
		}
		if best < 0 {
			return out
		}
		i := idx[best]
		idx[best]++
		if emit(&runs[best], i) {
			return out
		}
	}
}

// minFirstT returns the earliest timestamp across the (non-empty, sorted)
// runs.
func minFirstT(runs []runSnap) int64 {
	min := int64(maxInt64)
	for ri := range runs {
		if ts := runs[ri].ts; len(ts) > 0 && ts[0] < min {
			min = ts[0]
		}
	}
	return min
}

// windowAggregateRuns is the partial-merging counterpart of the serial
// windowAggregate reference: each run is bucketed into aligned windows on
// its own (runs are sorted, so this is a single forward sweep), per-window
// per-column partials are filled by vectorized column folds (agg.go) and
// merged across runs in run order, and windows are emitted in time order,
// truncated at limit. Empty windows are skipped (InfluxDB fill(none)).
func windowAggregateRuns(runs []runSnap, cols, strs []string, agg AggFunc, pct float64, every time.Duration, startNS, endNS int64, limit int) []Row {
	w := every.Nanoseconds()
	if w <= 0 || len(runs) == 0 {
		return nil
	}
	minT := minFirstT(runs)
	if startNS == minInt64 {
		startNS = minT
	}
	first := minT
	if first < startNS {
		first = startNS
	}
	base := alignNS(first, w)
	_ = endNS // rows beyond the end were already cut in phase 1

	// Single-run groups (the common GROUP BY hostname shape) need no
	// cross-run merge: windows arrive in order, rows fold straight into
	// the final partials and emission stops at limit — the window-side
	// counterpart of the raw Limit pushdown.
	if len(runs) == 1 {
		rs := &runs[0]
		var out []Row
		i := 0
		for i < len(rs.ts) {
			ws := alignNS(rs.ts[i], w)
			if ws < base {
				ws = base
			}
			we := ws + w
			j := i
			for j < len(rs.ts) && rs.ts[j] < we {
				j++
			}
			vals := make([]*lineproto.Value, len(cols))
			for ci := range cols {
				p := partial{agg: agg, pct: pct, mode: modeOf(agg)}
				foldView(&p, rs, ci, i, j, strs)
				p.finalize()
				if v, ok := p.result(); ok {
					vv := v
					vals[ci] = &vv
				}
			}
			out = append(out, Row{Time: time.Unix(0, ws).UTC(), Values: vals})
			if limit > 0 && len(out) >= limit {
				break
			}
			i = j
		}
		return out
	}

	// Multi-run groups: per-run per-window partials, merged across runs in
	// run order. Feeding rows of run k only after every row of runs <k
	// keeps the merge order fixed and the result independent of worker
	// scheduling.
	wins := map[int64][]partial{}
	for ri := range runs {
		rs := &runs[ri]
		i := 0
		for i < len(rs.ts) {
			ws := alignNS(rs.ts[i], w)
			if ws < base {
				ws = base
			}
			we := ws + w
			j := i
			for j < len(rs.ts) && rs.ts[j] < we {
				j++
			}
			parts, ok := wins[ws]
			if !ok {
				parts = make([]partial, len(cols))
				for ci := range parts {
					parts[ci] = partial{agg: agg, pct: pct, mode: modeOf(agg)}
				}
				wins[ws] = parts
			}
			for ci := range cols {
				rp := partial{agg: agg, pct: pct, mode: modeOf(agg)}
				foldView(&rp, rs, ci, i, j, strs)
				rp.finalize()
				parts[ci].merge(&rp)
			}
			i = j
		}
	}
	starts := make([]int64, 0, len(wins))
	for ws := range wins {
		starts = append(starts, ws)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	if limit > 0 && len(starts) > limit {
		starts = starts[:limit]
	}
	out := make([]Row, 0, len(starts))
	for _, ws := range starts {
		parts := wins[ws]
		vals := make([]*lineproto.Value, len(cols))
		for ci := range parts {
			if v, ok := parts[ci].result(); ok {
				vv := v
				vals[ci] = &vv
			}
		}
		out = append(out, Row{Time: time.Unix(0, ws).UTC(), Values: vals})
	}
	return out
}

// alignNS floors t to a multiple of w, mirroring InfluxDB window alignment
// (correct for negative timestamps too).
func alignNS(t, w int64) int64 {
	if t >= 0 {
		return t - t%w
	}
	return t - (w+t%w)%w
}
