package gmond

import (
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/lineproto"
	"repro/internal/router"
	"repro/internal/tsdb"
)

func now() time.Time { return time.Unix(2000, 0).UTC() }

func TestRenderParseRoundTrip(t *testing.T) {
	s := NewServer("emmy")
	s.Update("h1", now(), []Metric{
		{Name: "load_one", Value: 1.5, Units: ""},
		{Name: "bytes_in", Value: 2.5e6, Units: "bytes/sec"},
	})
	s.Update("h2", now(), []Metric{{Name: "load_one", Value: 0.25}})
	data, err := s.RenderXML()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `CLUSTER NAME="emmy"`) {
		t.Fatalf("xml %s", data)
	}
	hosts, err := ParseXML(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 2 {
		t.Fatalf("hosts %v", hosts)
	}
	var names []string
	for _, m := range hosts["h1"] {
		names = append(names, m.Name)
	}
	sort.Strings(names)
	if len(names) != 2 || names[0] != "bytes_in" || names[1] != "load_one" {
		t.Fatalf("h1 metrics %v", names)
	}
	for _, m := range hosts["h1"] {
		if m.Name == "bytes_in" && m.Value != 2.5e6 {
			t.Fatalf("value %v", m.Value)
		}
	}
}

func TestUpdateOverwritesMetric(t *testing.T) {
	s := NewServer("c")
	s.Update("h1", now(), []Metric{{Name: "load_one", Value: 1}})
	s.Update("h1", now(), []Metric{{Name: "load_one", Value: 2}})
	data, _ := s.RenderXML()
	hosts, _ := ParseXML(data)
	if len(hosts["h1"]) != 1 || hosts["h1"][0].Value != 2 {
		t.Fatalf("%v", hosts["h1"])
	}
}

func TestParseXMLSkipsNonNumeric(t *testing.T) {
	xmlData := []byte(`<GANGLIA_XML VERSION="3.7.2"><CLUSTER NAME="c">
<HOST NAME="h1" REPORTED="1"><METRIC NAME="os_name" VAL="Linux" TYPE="string" UNITS=""/>
<METRIC NAME="load_one" VAL="0.5" TYPE="double" UNITS=""/></HOST></CLUSTER></GANGLIA_XML>`)
	hosts, err := ParseXML(xmlData)
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts["h1"]) != 1 || hosts["h1"][0].Name != "load_one" {
		t.Fatalf("%v", hosts)
	}
}

func TestParseXMLError(t *testing.T) {
	if _, err := ParseXML([]byte("not xml")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestTCPDump(t *testing.T) {
	s := NewServer("c")
	s.Update("h1", now(), []Metric{{Name: "load_one", Value: 3}})
	if err := s.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Proxy against the live server.
	var mu sync.Mutex
	var got []lineproto.Point
	p := &Proxy{
		Addr: s.Addr(),
		Ingest: func(pts []lineproto.Point) error {
			mu.Lock()
			got = append(got, pts...)
			mu.Unlock()
			return nil
		},
		Now: now,
	}
	n, err := p.Pull()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("pushed %d", n)
	}
	mu.Lock()
	defer mu.Unlock()
	pt := got[0]
	if pt.Measurement != "ganglia_load_one" {
		t.Fatalf("measurement %q", pt.Measurement)
	}
	if pt.Tags["hostname"] != "h1" {
		t.Fatalf("tags %v", pt.Tags)
	}
	if pt.Fields["value"].FloatVal() != 3 {
		t.Fatalf("value %v", pt.Fields)
	}
	if !pt.Time.Equal(now()) {
		t.Fatalf("time %v", pt.Time)
	}
}

func TestProxyIntoRouterEnrichment(t *testing.T) {
	// Full pull path: gmond -> proxy -> router -> tsdb, with job tagging.
	s := NewServer("c")
	s.Update("h1", now(), []Metric{{Name: "load_one", Value: 1.25}})
	if err := s.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	store := tsdb.NewStore()
	db := store.CreateDatabase("lms")
	rt, err := router.New(router.Config{Primary: router.LocalSink{DB: db}})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.JobStart(router.JobSignal{JobID: "77", User: "alice", Nodes: []string{"h1"}}); err != nil {
		t.Fatal(err)
	}
	p := &Proxy{Addr: s.Addr(), Ingest: rt.Ingest, Now: now}
	if _, err := p.Pull(); err != nil {
		t.Fatal(err)
	}
	res, err := db.Select(tsdb.Query{Measurement: "ganglia_load_one", Filter: tsdb.TagFilter{"jobid": "77"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Rows[0].Values[0].FloatVal() != 1.25 {
		t.Fatalf("%+v", res)
	}
}

func TestProxyConfigErrors(t *testing.T) {
	p := &Proxy{Addr: "127.0.0.1:1"}
	if _, err := p.Pull(); err == nil {
		t.Fatal("missing ingest accepted")
	}
	p.Ingest = func([]lineproto.Point) error { return nil }
	if _, err := p.Pull(); err == nil {
		t.Fatal("dead endpoint accepted")
	}
}

func TestProxyEmptyDump(t *testing.T) {
	s := NewServer("empty")
	if err := s.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	called := false
	p := &Proxy{Addr: s.Addr(), Ingest: func([]lineproto.Point) error { called = true; return nil }}
	n, err := p.Pull()
	if err != nil || n != 0 {
		t.Fatalf("%d %v", n, err)
	}
	if called {
		t.Fatal("ingest called for empty dump")
	}
}

func TestProxyMeasurementPrefix(t *testing.T) {
	s := NewServer("c")
	s.Update("h1", now(), []Metric{{Name: "m", Value: 1}})
	if err := s.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var got string
	p := &Proxy{Addr: s.Addr(), MeasurementPrefix: "g_",
		Ingest: func(pts []lineproto.Point) error { got = pts[0].Measurement; return nil }}
	if _, err := p.Pull(); err != nil {
		t.Fatal(err)
	}
	if got != "g_m" {
		t.Fatalf("measurement %q", got)
	}
}

func TestServerCloseIdempotentWithoutListen(t *testing.T) {
	s := NewServer("c")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.Addr() != "" {
		t.Fatal("addr without listen")
	}
}

func TestProxyRunLoop(t *testing.T) {
	s := NewServer("c")
	s.Update("h1", now(), []Metric{{Name: "m", Value: 1}})
	if err := s.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var mu sync.Mutex
	count := 0
	p := &Proxy{Addr: s.Addr(), Ingest: func([]lineproto.Point) error {
		mu.Lock()
		count++
		mu.Unlock()
		return nil
	}}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { p.Run(10*time.Millisecond, stop, nil); close(done) }()
	deadline := time.After(5 * time.Second)
	for {
		mu.Lock()
		c := count
		mu.Unlock()
		if c >= 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("proxy loop stalled")
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	close(stop)
	<-done
}
