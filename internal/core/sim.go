package core

import (
	"fmt"
	"math"
	"time"

	"repro/internal/analysis"
	"repro/internal/collector"
	"repro/internal/hpm"
	"repro/internal/jobsched"
	"repro/internal/lineproto"
	"repro/internal/proc"
	"repro/internal/router"
	"repro/internal/usermetric"
	"repro/internal/workload"
)

// SimEpoch anchors simulated time: simulated second 0 maps to this wall
// clock instant (the paper's arXiv submission date, for flavor).
var SimEpoch = time.Date(2017, 8, 4, 10, 0, 0, 0, time.UTC)

// SimConfig describes the simulated cluster.
type SimConfig struct {
	// Nodes is the compute node count (named node01..nodeNN).
	Nodes int
	// Topology is the per-node hardware layout.
	Topology hpm.Topology
	// MemKBPerNode is the node memory capacity (default 64 GB).
	MemKBPerNode uint64
	// CollectInterval is the monitoring sampling period in simulated
	// seconds (default 60, typical production monitoring cadence).
	CollectInterval float64
	// HPMGroups are the LIKWID groups collected per node (default MEM_DP).
	HPMGroups []string
}

// SimNode is one simulated compute node with its collection agent.
type SimNode struct {
	Name    string
	Machine *hpm.Machine
	Proc    *proc.State
	Agent   *collector.Agent

	model    workload.Model
	jobStart float64 // simulated start time of the running job
	cores    int
}

// Simulation drives a simulated cluster against a Stack: scheduler events
// become router job signals, workload models drive the per-node hardware
// and OS counters, collection agents sample them, and application-level
// samplers (miniMD) emit through libusermetric — the complete Fig. 1
// data flow without any real hardware.
type Simulation struct {
	Stack *Stack
	Sched *jobsched.Scheduler
	Nodes []*SimNode

	cfg    SimConfig
	now    float64
	models map[string]workload.Model
	apps   map[string]*usermetric.Client
	emitT  map[string]float64 // per job: last app-level emission time
}

// SimTime converts simulated seconds to the wall-clock timestamps stored in
// the database.
func SimTime(sec float64) time.Time {
	return SimEpoch.Add(time.Duration(sec * float64(time.Second)))
}

// NewSimulation builds the cluster and hooks it to the stack. The stack
// should have been created with Now returning the simulation clock; use
// NewSimulatedStack for the standard wiring.
func NewSimulation(stack *Stack, cfg SimConfig) (*Simulation, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("core: simulation needs nodes")
	}
	if cfg.Topology.NumHWThreads() == 0 {
		cfg.Topology = hpm.DefaultTopology()
	}
	if cfg.MemKBPerNode == 0 {
		cfg.MemKBPerNode = 64 * 1024 * 1024
	}
	if cfg.CollectInterval <= 0 {
		cfg.CollectInterval = 60
	}
	if len(cfg.HPMGroups) == 0 {
		cfg.HPMGroups = []string{"MEM_DP"}
	}
	sim := &Simulation{
		Stack:  stack,
		cfg:    cfg,
		models: make(map[string]workload.Model),
		apps:   make(map[string]*usermetric.Client),
		emitT:  make(map[string]float64),
	}

	var nodes []jobsched.Node
	for i := 0; i < cfg.Nodes; i++ {
		name := fmt.Sprintf("node%02d", i+1)
		machine, err := hpm.NewMachine(cfg.Topology)
		if err != nil {
			return nil, err
		}
		pstate, err := proc.NewState(name, cfg.Topology.NumHWThreads(), cfg.MemKBPerNode)
		if err != nil {
			return nil, err
		}
		agent, err := collector.New(collector.Config{
			Hostname: name,
			// The agent's flush delivers one encoded batch; hand it to the
			// router's batched entry point (same path as HTTP /write).
			Sink: stack.Router.IngestBatch,
		})
		if err != nil {
			return nil, err
		}
		plugins := []collector.Plugin{
			&collector.LoadPlugin{FS: pstate},
			&collector.CPUPlugin{FS: pstate},
			&collector.MemoryPlugin{FS: pstate},
			&collector.NetworkPlugin{FS: pstate},
			&collector.DiskPlugin{FS: pstate},
		}
		for _, g := range cfg.HPMGroups {
			plugins = append(plugins, &collector.HPMPlugin{Machine: machine, GroupName: g})
		}
		for _, p := range plugins {
			if err := agent.Register(p); err != nil {
				return nil, err
			}
		}
		sim.Nodes = append(sim.Nodes, &SimNode{
			Name:    name,
			Machine: machine,
			Proc:    pstate,
			Agent:   agent,
			cores:   cfg.Topology.NumHWThreads(),
		})
		nodes = append(nodes, jobsched.Node{Name: name, Cores: cfg.Topology.NumHWThreads()})
	}
	sched, err := jobsched.New(nodes)
	if err != nil {
		return nil, err
	}
	sim.Sched = sched
	return sim, nil
}

// NewSimulatedStack builds a Stack whose clock follows a simulation, then
// the simulation itself. Peak values for the pattern tree derive from the
// topology (AVX peak per core, ~12 GB/s per core stream bandwidth).
func NewSimulatedStack(scfg StackConfig, simCfg SimConfig) (*Stack, *Simulation, error) {
	var sim *Simulation
	scfg.Now = func() time.Time {
		if sim == nil {
			return SimEpoch
		}
		return SimTime(sim.now)
	}
	topo := simCfg.Topology
	if topo.NumHWThreads() == 0 {
		topo = hpm.DefaultTopology()
	}
	if scfg.PeakDPMFlops == 0 {
		// 8 DP flops/cycle AVX FMA-less peak per core.
		scfg.PeakDPMFlops = float64(topo.NumHWThreads()) * topo.BaseClockMHz * 8
	}
	if scfg.PeakMemBWMBs == 0 {
		// Achievable STREAM bandwidth, not the theoretical interface peak;
		// saturation thresholds are defined against what codes can reach.
		scfg.PeakMemBWMBs = float64(topo.Sockets) * 30000
	}
	stack, err := NewStack(scfg)
	if err != nil {
		return nil, nil, err
	}
	s, err := NewSimulation(stack, simCfg)
	if err != nil {
		_ = stack.Close()
		return nil, nil, err
	}
	sim = s
	return stack, sim, nil
}

// Now returns the simulation clock in seconds.
func (s *Simulation) Now() float64 { return s.now }

// SubmitJob queues a job whose per-node behaviour follows the model. The
// walltime defaults to the model duration.
func (s *Simulation) SubmitJob(req jobsched.JobRequest, model workload.Model) error {
	if model == nil {
		return fmt.Errorf("core: job %s has no workload model", req.ID)
	}
	if req.Walltime == 0 {
		req.Walltime = model.Duration()
	}
	if err := workload.Validate(model, s.cfg.Topology.NumHWThreads()); err != nil {
		return err
	}
	if err := s.Sched.Submit(req); err != nil {
		return err
	}
	s.models[req.ID] = model
	return nil
}

// node looks up a simulated node by name.
func (s *Simulation) node(name string) *SimNode {
	for _, n := range s.Nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// handleEvent translates one scheduler event into router signals and node
// state.
func (s *Simulation) handleEvent(ev jobsched.Event) error {
	job := ev.Job
	model := s.models[job.Req.ID]
	if ev.Start {
		sig := router.JobSignal{
			JobID: job.Req.ID,
			User:  job.Req.User,
			Nodes: job.Nodes,
			Tags:  job.Req.Tags,
		}
		if err := s.Stack.Router.JobStart(sig); err != nil {
			return err
		}
		for i, name := range job.Nodes {
			n := s.node(name)
			n.model = model
			if na, ok := model.(workload.NodeAware); ok {
				n.model = na.WithNodeIndex(i, len(job.Nodes))
			}
			n.jobStart = ev.Time
		}
		// Application-level client: one per job, sending via the router
		// like libusermetric over HTTP. The default tags bind the data to
		// the first node so the router attaches the job tags.
		if _, ok := model.(*workload.MiniMD); ok {
			c, err := usermetric.New(usermetric.Config{
				Sink:          s.Stack.Router.IngestBatch,
				DefaultTags:   map[string]string{"hostname": job.Nodes[0], "app": model.Name()},
				FlushInterval: -1,
				Now:           func() time.Time { return SimTime(s.now) },
			})
			if err != nil {
				return err
			}
			s.apps[job.Req.ID] = c
			s.emitT[job.Req.ID] = 0
			// The start event, as sent by the libusermetric command line
			// tool from the batch script (paper Fig. 3).
			_ = c.Event(fmt.Sprintf("%s start", model.Name()), nil)
			_ = c.Flush()
		}
		return nil
	}
	// Job end.
	if c, ok := s.apps[job.Req.ID]; ok {
		model := s.models[job.Req.ID]
		if mm, ok := model.(*workload.MiniMD); ok {
			s.emitAppSamples(job.Req.ID, mm, ev.Time-job.StartT)
		}
		_ = c.Event(fmt.Sprintf("%s end", model.Name()), nil)
		_ = c.Close()
		delete(s.apps, job.Req.ID)
		delete(s.emitT, job.Req.ID)
	}
	for _, name := range job.Nodes {
		n := s.node(name)
		n.model = nil
		for core := 0; core < n.cores; core++ {
			_ = n.Machine.Idle(core)
			_ = n.Proc.SetCPULoad(core, 0, 0)
		}
		n.Proc.SetRunnable(0)
		n.Proc.SetMemUsed(0)
		n.Proc.SetNetRates(0, 0)
		n.Proc.SetDiskRates(0, 0)
	}
	return s.Stack.Router.JobEnd(job.Req.ID)
}

// emitAppSamples sends the miniMD per-100-iteration metrics produced in
// (emitT, upTo] of job time.
func (s *Simulation) emitAppSamples(jobID string, mm *workload.MiniMD, upTo float64) {
	c := s.apps[jobID]
	if c == nil {
		return
	}
	last := s.emitT[jobID]
	for _, sample := range mm.Samples(last, upTo) {
		tags := map[string]string{"iteration": fmt.Sprint(sample.Iteration)}
		_ = c.MetricFields("minimd", map[string]lineproto.Value{
			"runtime_100iter": lineproto.Float(sample.Runtime100),
			"pressure":        lineproto.Float(sample.Pressure),
			"temperature":     lineproto.Float(sample.Temp),
			"energy":          lineproto.Float(sample.Energy),
		}, tags)
	}
	_ = c.Flush()
	s.emitT[jobID] = upTo
}

// applyProfiles installs the workload state on all nodes for the current
// simulated instant.
func (s *Simulation) applyProfiles() error {
	for _, n := range s.Nodes {
		if n.model == nil {
			continue
		}
		t := s.now - n.jobStart
		runnable := 0
		var netRx, netTx, diskR, diskW float64
		for core := 0; core < n.cores; core++ {
			p := n.model.ProfileAt(t, core)
			if err := n.Machine.SetRates(core, p.Rates(s.cfg.Topology.BaseClockMHz)); err != nil {
				return err
			}
			if err := n.Proc.SetCPULoad(core, p.UserFrac, p.SysFrac); err != nil {
				return err
			}
			if !p.Idle() {
				runnable++
				// MPI halo exchange and checkpoint traffic scale with the
				// core's activity in this simple model.
				netRx += p.MemBytes * 0.001
				netTx += p.MemBytes * 0.001
				diskR += 1e5
				diskW += 5e4
			}
		}
		n.Proc.SetRunnable(runnable)
		n.Proc.SetMemUsed(n.model.MemUsedKB(t))
		n.Proc.SetNetRates(netRx, netTx)
		n.Proc.SetDiskRates(diskR, diskW)
	}
	return nil
}

// Step advances the simulation by one collection interval: scheduler
// events, workload profiles, hardware/OS counters, agent collection and
// application-level emission.
func (s *Simulation) Step() error {
	dt := s.cfg.CollectInterval
	events, err := s.Sched.Advance(dt)
	if err != nil {
		return err
	}
	for _, ev := range events {
		if err := s.handleEvent(ev); err != nil {
			return err
		}
	}
	if err := s.applyProfiles(); err != nil {
		return err
	}
	for _, n := range s.Nodes {
		if err := n.Machine.Advance(dt); err != nil {
			return err
		}
		if err := n.Proc.Tick(dt); err != nil {
			return err
		}
	}
	s.now += dt
	ts := SimTime(s.now)
	for _, n := range s.Nodes {
		if err := n.Agent.CollectAndPush(ts); err != nil {
			return err
		}
	}
	// Application-level samples for running miniMD jobs.
	for _, job := range s.Sched.Running() {
		if mm, ok := s.models[job.Req.ID].(*workload.MiniMD); ok {
			s.emitAppSamples(job.Req.ID, mm, s.now-job.StartT)
		}
	}
	return nil
}

// Run advances the simulation for the given number of simulated seconds.
func (s *Simulation) Run(seconds float64) error {
	steps := int(math.Ceil(seconds / s.cfg.CollectInterval))
	for i := 0; i < steps; i++ {
		if err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}

// JobMeta converts a scheduler job into the analysis metadata, using the
// simulation epoch mapping.
func (s *Simulation) JobMeta(job *jobsched.Job) analysis.JobMeta {
	meta := analysis.JobMeta{
		ID:    job.Req.ID,
		User:  job.Req.User,
		Nodes: append([]string(nil), job.Nodes...),
		Start: SimTime(job.StartT),
	}
	if job.State == jobsched.StateFinished {
		meta.End = SimTime(job.EndT)
	}
	return meta
}
