package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestTraceRecordsSpans(t *testing.T) {
	ring := NewTraceRing(4)
	tr := ring.StartTrace("req", "abcd1234abcd1234")
	if tr == nil {
		t.Fatal("enabled ring returned nil trace")
	}
	if tr.ID() != "abcd1234abcd1234" {
		t.Fatalf("trace did not keep the upstream id: %q", tr.ID())
	}
	sp := tr.Start("phase.one").Attr("db", "lms").AttrInt("points", 42)
	time.Sleep(time.Millisecond)
	sp.End()
	open := tr.Start("phase.two") // left open: Finish must close it
	_ = open
	tr.Finish()
	tr.Finish() // idempotent

	d, ok := ring.Find("abcd1234abcd1234")
	if !ok {
		t.Fatal("finished trace not in ring")
	}
	if d.Name != "req" || d.DurationNS <= 0 {
		t.Fatalf("bad trace data: %+v", d)
	}
	if len(d.Spans) != 2 {
		t.Fatalf("want 2 spans, got %d", len(d.Spans))
	}
	one := d.Spans[0]
	if one.Name != "phase.one" || one.DurNS <= 0 {
		t.Fatalf("bad first span: %+v", one)
	}
	if one.Attr("db") != "lms" || one.Attr("points") != "42" || one.Attr("missing") != "" {
		t.Fatalf("bad attrs: %+v", one.Attrs)
	}
	if two := d.Spans[1]; two.DurNS < 0 {
		t.Fatalf("open span not closed at finish: %+v", two)
	}
	// Spans sort by start offset.
	if d.Spans[0].StartNS > d.Spans[1].StartNS {
		t.Fatalf("spans out of order: %+v", d.Spans)
	}
}

func TestTraceFreshIDAndRingOverwrite(t *testing.T) {
	ring := NewTraceRing(2)
	var ids []string
	for i := 0; i < 3; i++ {
		tr := ring.StartTrace("req", "")
		if len(tr.ID()) != 16 {
			t.Fatalf("fresh id not 16 hex digits: %q", tr.ID())
		}
		ids = append(ids, tr.ID())
		tr.Finish()
	}
	snap := ring.Snapshot(0, 0)
	if len(snap) != 2 {
		t.Fatalf("ring of 2 holds %d traces", len(snap))
	}
	// Newest first; the oldest trace fell out.
	if snap[0].ID != ids[2] || snap[1].ID != ids[1] {
		t.Fatalf("snapshot order wrong: %v vs written %v", []string{snap[0].ID, snap[1].ID}, ids)
	}
	if _, ok := ring.Find(ids[0]); ok {
		t.Fatal("overwritten trace still findable")
	}
}

func TestTraceSnapshotFilters(t *testing.T) {
	ring := NewTraceRing(8)
	for i := 0; i < 4; i++ {
		ring.push(TraceData{ID: "t", DurationNS: int64(i) * int64(time.Millisecond)})
	}
	if got := ring.Snapshot(2*time.Millisecond, 0); len(got) != 2 {
		t.Fatalf("min_dur filter kept %d traces", len(got))
	}
	if got := ring.Snapshot(0, 3); len(got) != 3 {
		t.Fatalf("limit kept %d traces", len(got))
	}
}

func TestTraceServeHTTP(t *testing.T) {
	ring := NewTraceRing(4)
	tr := ring.StartTrace("req", "")
	tr.Start("a").End()
	tr.Finish()

	rec := httptest.NewRecorder()
	ring.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?min_dur=0s&limit=10", nil))
	if rec.Code != 200 || !strings.Contains(rec.Header().Get("Content-Type"), "application/json") {
		t.Fatalf("bad response: %d %q", rec.Code, rec.Header().Get("Content-Type"))
	}
	var got []TraceData
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != tr.ID() || len(got[0].Spans) != 1 {
		t.Fatalf("bad JSON payload: %s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	ring.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?min_dur=nope", nil))
	if rec.Code != 400 {
		t.Fatalf("bad min_dur accepted: %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	ring.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?limit=nope", nil))
	if rec.Code != 400 {
		t.Fatalf("bad limit accepted: %d", rec.Code)
	}
}

func TestTraceContextPlumbing(t *testing.T) {
	ring := NewTraceRing(1)
	tr := ring.StartTrace("req", "")
	ctx := WithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("trace lost in context")
	}
	if TraceFrom(context.Background()) != nil {
		t.Fatal("bare context carries a trace")
	}
	if WithTrace(context.Background(), nil) != context.Background() {
		t.Fatal("attaching nil trace changed the context")
	}
}

// TestTraceDisabledIsFree pins the zero-cost-when-off contract: every
// operation the instrumented hot paths perform when tracing is disabled —
// StartTrace on a nil or disabled ring, span work on the resulting nil
// trace, TraceFrom on a context without a trace — must allocate nothing.
func TestTraceDisabledIsFree(t *testing.T) {
	var nilRing *TraceRing
	if nilRing.Enabled() {
		t.Fatal("nil ring enabled")
	}
	if nilRing.Snapshot(0, 0) != nil {
		t.Fatal("nil ring snapshot not nil")
	}
	off := NewTraceRing(1)
	off.SetEnabled(false)
	if off.StartTrace("req", "") != nil {
		t.Fatal("disabled ring handed out a trace")
	}
	ctx := context.Background()
	if allocs := testing.AllocsPerRun(1000, func() {
		tr := nilRing.StartTrace("req", "")
		tr2 := off.StartTrace("req", "")
		sp := tr.Start("phase").Attr("k", "v").AttrInt("n", 7)
		sp.End()
		tr.Finish()
		tr2.Finish()
		_ = TraceFrom(ctx).ID()
	}); allocs != 0 {
		t.Fatalf("disabled tracing allocates: %v allocs/op", allocs)
	}
}

// TestDebugMux covers the -debug-addr listener surface: the pprof
// endpoints answer (the heap profile in particular — satellite smoke
// test) and /debug/traces is wired when a ring is present, absent when
// not.
func TestDebugMux(t *testing.T) {
	ring := NewTraceRing(2)
	ring.StartTrace("req", "feedfacefeedface").Finish()
	srv := httptest.NewServer(DebugMux(ring))
	defer srv.Close()

	for _, path := range []string{"/debug/pprof/heap", "/debug/pprof/", "/debug/pprof/cmdline"} {
		rsp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		rsp.Body.Close()
		if rsp.StatusCode != 200 {
			t.Fatalf("GET %s: %d", path, rsp.StatusCode)
		}
	}
	rsp, err := srv.Client().Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer rsp.Body.Close()
	var got []TraceData
	if err := json.NewDecoder(rsp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != "feedfacefeedface" {
		t.Fatalf("traces endpoint lost the trace: %+v", got)
	}

	bare := httptest.NewServer(DebugMux(nil))
	defer bare.Close()
	rsp2, err := bare.Client().Get(bare.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	rsp2.Body.Close()
	if rsp2.StatusCode != 404 {
		t.Fatalf("ringless mux serves /debug/traces: %d", rsp2.StatusCode)
	}
}
