package durable

// Checkpoint files: one immutable, self-contained serialization of a
// database's columnar state (the on-disk analogue of InfluxDB's read-only
// TSM files). The tsdb layer converts its in-memory runs to and from the
// neutral Snapshot structs below; this file owns the bytes.
//
// Layout:
//
//	[8B magic "LMSCKP1\n"][payload][4B CRC32 (IEEE) of payload]
//
// The payload nests measurements → series → runs → columns. Sorted
// timestamp columns are delta-encoded as uvarints after a fixed 64-bit
// anchor (metric samples arrive at near-constant intervals, so deltas are
// 1-5 bytes instead of 8), integer columns are zigzag varints, float
// columns raw 64-bit words, string columns varint ids into the
// measurement's interned table. The file is written to a temp name,
// fsynced and atomically renamed to
//
//	checkpoint-%08d.snap
//
// where the number is the WAL segment recovery must replay from: state in
// segments below it is captured by the checkpoint, so they are deleted
// once the rename lands. Load walks the checkpoints newest-first and
// skips files that fail the CRC (a crash can only tear the temp file, but
// media corruption of a renamed checkpoint must not take recovery down
// with it when an older valid checkpoint plus a longer WAL tail exists).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/fsys"
	"repro/internal/lineproto"
)

// Checkpoint format versions. V1 (PR 5) stores every run as raw
// delta/varint-encoded columns; V2 adds a per-run kind byte so compressed
// runs can carry their Gorilla-style chunks to disk verbatim — checkpoint
// write skips re-encoding, recovery loads them without a decode pass. The
// loader reads both; the writer emits V2 (SnapV1 stays writable for
// back-compat tests and downgrade tooling, raw runs only).
const (
	SnapV1 = 1
	SnapV2 = 2
)

const (
	snapMagicV1 = "LMSCKP1\n"
	snapMagicV2 = "LMSCKP2\n"
)

// Per-run kind bytes (V2 frames).
const (
	runKindRaw  = 0
	runKindComp = 1
)

// Snapshot is the neutral, format-owning image of one database.
type Snapshot struct {
	Measurements []Measurement
}

// Measurement is one measurement's schema, interned strings and series.
type Measurement struct {
	Name   string
	Fields []FieldSchema
	Strs   []string // interned string field values; columns hold ids
	Series []Series
}

// FieldSchema records one field of the measurement schema.
type FieldSchema struct {
	Name string
	Kind lineproto.ValueKind
}

// Series is one tag set's run list, in creation (log-structured) order.
type Series struct {
	Tags map[string]string
	Runs []Run
}

// Run is one sorted columnar run: either raw (a timestamp column plus one
// column per field) or compressed (Comp non-nil, Ts/Cols empty; V2 files
// only).
type Run struct {
	Ts   []int64
	Cols []Col
	Comp *CompRun
}

// CompRun mirrors the tsdb layer's compressed run: per-column chunk bytes
// plus the header fields needed without decoding. The durable layer
// frames and CRCs the chunks; it never decodes them.
type CompRun struct {
	N            int
	MinTS, MaxTS int64
	RawBytes     int64
	Ts           []byte // delta-of-delta timestamp chunk
	Cols         []CompCol
}

// CompCol is one field's compressed column chunk.
type CompCol struct {
	Name    string
	Kind    lineproto.ValueKind
	Mixed   bool
	Width   uint8
	Present []uint64
	Data    []byte
	Vals    []lineproto.Value // mixed columns stay raw
}

// Col is one field's value column. Exactly one value arm is populated:
// Floats (KindFloat), Ints (KindInt and KindBool), StrIDs (KindString,
// ids into Measurement.Strs) or Vals when Mixed. A nil Present bitmap
// means every row carries a value.
type Col struct {
	Name    string
	Kind    lineproto.ValueKind
	Mixed   bool
	Present []uint64
	Floats  []float64
	Ints    []int64
	StrIDs  []uint32
	Vals    []lineproto.Value
}

func snapshotName(seg int) string { return fmt.Sprintf("checkpoint-%08d.snap", seg) }

func parseSnapshotName(name string) (int, bool) {
	var idx int
	if n, err := fmt.Sscanf(name, "checkpoint-%08d.snap", &idx); n != 1 || err != nil {
		return 0, false
	}
	if snapshotName(idx) != name {
		return 0, false
	}
	return idx, true
}

// --- encoding ----------------------------------------------------------

func appendSnapshot(dst []byte, s *Snapshot, version int) []byte {
	dst = appendUvarint(dst, uint64(len(s.Measurements)))
	for mi := range s.Measurements {
		m := &s.Measurements[mi]
		dst = appendString(dst, m.Name)
		dst = appendUvarint(dst, uint64(len(m.Fields)))
		for _, f := range m.Fields {
			dst = appendString(dst, f.Name)
			dst = append(dst, byte(f.Kind))
		}
		dst = appendUvarint(dst, uint64(len(m.Strs)))
		for _, v := range m.Strs {
			dst = appendString(dst, v)
		}
		dst = appendUvarint(dst, uint64(len(m.Series)))
		for si := range m.Series {
			dst = appendSeries(dst, &m.Series[si], version)
		}
	}
	return dst
}

func appendSeries(dst []byte, sr *Series, version int) []byte {
	keys := make([]string, 0, len(sr.Tags))
	for k := range sr.Tags {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	dst = appendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = appendString(dst, k)
		dst = appendString(dst, sr.Tags[k])
	}
	dst = appendUvarint(dst, uint64(len(sr.Runs)))
	for ri := range sr.Runs {
		dst = appendRun(dst, &sr.Runs[ri], version)
	}
	return dst
}

func appendRun(dst []byte, r *Run, version int) []byte {
	if version >= SnapV2 {
		if r.Comp != nil {
			dst = append(dst, runKindComp)
			return appendCompRun(dst, r.Comp)
		}
		dst = append(dst, runKindRaw)
	}
	n := len(r.Ts)
	dst = appendUvarint(dst, uint64(n))
	if n > 0 {
		dst = appendFixed64(dst, uint64(r.Ts[0]))
		for i := 1; i < n; i++ {
			dst = appendUvarint(dst, uint64(r.Ts[i]-r.Ts[i-1])) // sorted: non-negative
		}
	}
	dst = appendUvarint(dst, uint64(len(r.Cols)))
	for ci := range r.Cols {
		dst = appendCol(dst, &r.Cols[ci], n)
	}
	return dst
}

func appendCompRun(dst []byte, c *CompRun) []byte {
	dst = appendUvarint(dst, uint64(c.N))
	dst = appendFixed64(dst, uint64(c.MinTS))
	dst = appendFixed64(dst, uint64(c.MaxTS))
	dst = appendUvarint(dst, uint64(c.RawBytes))
	dst = appendBytes(dst, c.Ts)
	dst = appendUvarint(dst, uint64(len(c.Cols)))
	for ci := range c.Cols {
		cc := &c.Cols[ci]
		dst = appendString(dst, cc.Name)
		dst = append(dst, byte(cc.Kind))
		flags := byte(0)
		if cc.Mixed {
			flags |= colFlagMixed
		}
		if cc.Present != nil {
			flags |= colFlagPresent
		}
		dst = append(dst, flags, cc.Width)
		if cc.Present != nil {
			for _, w := range cc.Present {
				dst = appendFixed64(dst, w)
			}
		}
		if cc.Mixed {
			for i := 0; i < c.N; i++ {
				dst = appendValue(dst, cc.Vals[i])
			}
		} else {
			dst = appendBytes(dst, cc.Data)
		}
	}
	return dst
}

func appendBytes(dst, b []byte) []byte {
	dst = appendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

const (
	colFlagMixed   = 1 << 0
	colFlagPresent = 1 << 1
)

func appendCol(dst []byte, c *Col, n int) []byte {
	dst = appendString(dst, c.Name)
	dst = append(dst, byte(c.Kind))
	flags := byte(0)
	if c.Mixed {
		flags |= colFlagMixed
	}
	if c.Present != nil {
		flags |= colFlagPresent
	}
	dst = append(dst, flags)
	if c.Present != nil {
		for _, w := range c.Present {
			dst = appendFixed64(dst, w)
		}
	}
	switch {
	case c.Mixed:
		for i := 0; i < n; i++ {
			dst = appendValue(dst, c.Vals[i])
		}
	case c.Kind == lineproto.KindFloat:
		for i := 0; i < n; i++ {
			dst = appendFixed64(dst, math.Float64bits(c.Floats[i]))
		}
	case c.Kind == lineproto.KindString:
		for i := 0; i < n; i++ {
			dst = appendUvarint(dst, uint64(c.StrIDs[i]))
		}
	default: // KindInt, KindBool
		for i := 0; i < n; i++ {
			dst = binary.AppendVarint(dst, c.Ints[i])
		}
	}
	return dst
}

// --- decoding ----------------------------------------------------------

func decodeSnapshot(payload []byte, version int) (*Snapshot, error) {
	r := &batchReader{b: payload}
	nm, err := r.count()
	if err != nil {
		return nil, err
	}
	s := &Snapshot{}
	if nm > 0 {
		s.Measurements = make([]Measurement, 0, nm)
	}
	for i := 0; i < nm; i++ {
		m, err := decodeMeasurement(r, version)
		if err != nil {
			return nil, err
		}
		s.Measurements = append(s.Measurements, m)
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("durable: %d trailing bytes after snapshot", len(r.b))
	}
	return s, nil
}

func decodeMeasurement(r *batchReader, version int) (Measurement, error) {
	var m Measurement
	var err error
	if m.Name, err = r.str(); err != nil {
		return m, err
	}
	nf, err := r.count()
	if err != nil {
		return m, err
	}
	if nf > 0 {
		m.Fields = make([]FieldSchema, 0, nf)
	}
	for i := 0; i < nf; i++ {
		var f FieldSchema
		if f.Name, err = r.str(); err != nil {
			return m, err
		}
		if len(r.b) < 1 {
			return m, errShortBatch
		}
		f.Kind = lineproto.ValueKind(r.b[0])
		r.b = r.b[1:]
		m.Fields = append(m.Fields, f)
	}
	ns, err := r.count()
	if err != nil {
		return m, err
	}
	if ns > 0 {
		m.Strs = make([]string, 0, ns)
	}
	for i := 0; i < ns; i++ {
		v, err := r.str()
		if err != nil {
			return m, err
		}
		m.Strs = append(m.Strs, v)
	}
	nser, err := r.count()
	if err != nil {
		return m, err
	}
	if nser > 0 {
		m.Series = make([]Series, 0, nser)
	}
	for i := 0; i < nser; i++ {
		sr, err := decodeSeries(r, version)
		if err != nil {
			return m, err
		}
		m.Series = append(m.Series, sr)
	}
	return m, nil
}

func decodeSeries(r *batchReader, version int) (Series, error) {
	var sr Series
	nt, err := r.count()
	if err != nil {
		return sr, err
	}
	if nt > 0 {
		sr.Tags = make(map[string]string, nt)
		for i := 0; i < nt; i++ {
			k, err := r.str()
			if err != nil {
				return sr, err
			}
			v, err := r.str()
			if err != nil {
				return sr, err
			}
			sr.Tags[k] = v
		}
	}
	nr, err := r.count()
	if err != nil {
		return sr, err
	}
	if nr > 0 {
		sr.Runs = make([]Run, 0, nr)
	}
	for i := 0; i < nr; i++ {
		run, err := decodeRun(r, version)
		if err != nil {
			return sr, err
		}
		sr.Runs = append(sr.Runs, run)
	}
	return sr, nil
}

func decodeRun(r *batchReader, version int) (Run, error) {
	var run Run
	if version >= SnapV2 {
		if len(r.b) < 1 {
			return run, errShortBatch
		}
		kind := r.b[0]
		r.b = r.b[1:]
		switch kind {
		case runKindRaw:
		case runKindComp:
			c, err := decodeCompRun(r)
			if err != nil {
				return run, err
			}
			run.Comp = c
			return run, nil
		default:
			return run, fmt.Errorf("durable: unknown run kind %d", kind)
		}
	}
	n64, err := r.uvarint()
	if err != nil {
		return run, err
	}
	if n64 > uint64(len(r.b)) {
		return run, fmt.Errorf("durable: implausible run length %d", n64)
	}
	n := int(n64)
	if n > 0 {
		anchor, err := r.fixed64()
		if err != nil {
			return run, err
		}
		run.Ts = make([]int64, n)
		run.Ts[0] = int64(anchor)
		for i := 1; i < n; i++ {
			d, err := r.uvarint()
			if err != nil {
				return run, err
			}
			run.Ts[i] = run.Ts[i-1] + int64(d)
		}
	}
	nc, err := r.count()
	if err != nil {
		return run, err
	}
	if nc > 0 {
		run.Cols = make([]Col, 0, nc)
	}
	for i := 0; i < nc; i++ {
		c, err := decodeCol(r, n)
		if err != nil {
			return run, err
		}
		run.Cols = append(run.Cols, c)
	}
	return run, nil
}

func decodeCol(r *batchReader, n int) (Col, error) {
	var c Col
	var err error
	if c.Name, err = r.str(); err != nil {
		return c, err
	}
	if len(r.b) < 2 {
		return c, errShortBatch
	}
	c.Kind = lineproto.ValueKind(r.b[0])
	flags := r.b[1]
	r.b = r.b[2:]
	c.Mixed = flags&colFlagMixed != 0
	if flags&colFlagPresent != 0 {
		words := (n + 63) / 64
		c.Present = make([]uint64, words)
		for i := 0; i < words; i++ {
			w, err := r.fixed64()
			if err != nil {
				return c, err
			}
			c.Present[i] = w
		}
	}
	if n == 0 {
		return c, nil
	}
	switch {
	case c.Mixed:
		c.Vals = make([]lineproto.Value, n)
		for i := 0; i < n; i++ {
			if c.Vals[i], err = r.value(); err != nil {
				return c, err
			}
		}
	case c.Kind == lineproto.KindFloat:
		c.Floats = make([]float64, n)
		for i := 0; i < n; i++ {
			bits, err := r.fixed64()
			if err != nil {
				return c, err
			}
			c.Floats[i] = math.Float64frombits(bits)
		}
	case c.Kind == lineproto.KindString:
		c.StrIDs = make([]uint32, n)
		for i := 0; i < n; i++ {
			id, err := r.uvarint()
			if err != nil {
				return c, err
			}
			c.StrIDs[i] = uint32(id)
		}
	default:
		c.Ints = make([]int64, n)
		for i := 0; i < n; i++ {
			if c.Ints[i], err = r.varint(); err != nil {
				return c, err
			}
		}
	}
	return c, nil
}

// byteSlice reads a length-prefixed chunk. The returned slice is a copy,
// so the caller may retain it past the payload buffer.
func (r *batchReader) byteSlice() ([]byte, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	b := append([]byte(nil), r.b[:n]...)
	r.b = r.b[n:]
	return b, nil
}

// decodeCompRun reads one compressed run frame. The chunks themselves are
// opaque here, but their row count is sanity-checked against the minimum
// bits each codec spends per row, so a corrupt count that slipped past
// the CRC cannot make recovery allocate wild amounts or hand the query
// path a chunk shorter than its header claims.
func decodeCompRun(r *batchReader) (*CompRun, error) {
	c := &CompRun{}
	n64, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	// Timestamps cost at least 1 bit/row after the 64-bit anchor, so a row
	// count beyond 8x the remaining payload is structurally impossible.
	if n64 == 0 || n64 > uint64(len(r.b))*8 {
		return nil, fmt.Errorf("durable: implausible compressed run length %d", n64)
	}
	c.N = int(n64)
	min64, err := r.fixed64()
	if err != nil {
		return nil, err
	}
	max64, err := r.fixed64()
	if err != nil {
		return nil, err
	}
	c.MinTS, c.MaxTS = int64(min64), int64(max64)
	if c.MinTS > c.MaxTS {
		return nil, fmt.Errorf("durable: compressed run bounds inverted")
	}
	raw64, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	c.RawBytes = int64(raw64)
	if c.Ts, err = r.byteSlice(); err != nil {
		return nil, err
	}
	if len(c.Ts)*8 < 64+(c.N-1) {
		return nil, fmt.Errorf("durable: timestamp chunk shorter than %d rows", c.N)
	}
	nc, err := r.count()
	if err != nil {
		return nil, err
	}
	if nc > 0 {
		c.Cols = make([]CompCol, 0, nc)
	}
	for i := 0; i < nc; i++ {
		cc, err := decodeCompCol(r, c.N)
		if err != nil {
			return nil, err
		}
		c.Cols = append(c.Cols, cc)
	}
	return c, nil
}

func decodeCompCol(r *batchReader, n int) (CompCol, error) {
	var c CompCol
	var err error
	if c.Name, err = r.str(); err != nil {
		return c, err
	}
	if len(r.b) < 3 {
		return c, errShortBatch
	}
	c.Kind = lineproto.ValueKind(r.b[0])
	flags := r.b[1]
	c.Width = r.b[2]
	r.b = r.b[3:]
	c.Mixed = flags&colFlagMixed != 0
	if flags&colFlagPresent != 0 {
		words := (n + 63) / 64
		c.Present = make([]uint64, words)
		for i := 0; i < words; i++ {
			w, err := r.fixed64()
			if err != nil {
				return c, err
			}
			c.Present[i] = w
		}
	}
	if c.Mixed {
		if n > len(r.b) { // every encoded value costs at least one byte
			return c, errShortBatch
		}
		c.Vals = make([]lineproto.Value, n)
		for i := 0; i < n; i++ {
			if c.Vals[i], err = r.value(); err != nil {
				return c, err
			}
		}
		return c, nil
	}
	if c.Data, err = r.byteSlice(); err != nil {
		return c, err
	}
	// Per-codec minimum chunk sizes for n rows (see tsdb/compress.go):
	// XOR floats spend 64 bits on the first value and >= 1 bit after,
	// varint ints >= 1 byte/row, bit-packed string ids Width bits/row.
	switch {
	case c.Kind == lineproto.KindFloat:
		if len(c.Data)*8 < 64+(n-1) {
			return c, fmt.Errorf("durable: float chunk shorter than %d rows", n)
		}
	case c.Kind == lineproto.KindString:
		if c.Width > 32 {
			return c, fmt.Errorf("durable: string-id width %d out of range", c.Width)
		}
		if len(c.Data)*8 < int(c.Width)*n {
			return c, fmt.Errorf("durable: string-id chunk shorter than %d rows", n)
		}
	default: // KindInt, KindBool
		if len(c.Data) < n {
			return c, fmt.Errorf("durable: int chunk shorter than %d rows", n)
		}
	}
	return c, nil
}

// --- files -------------------------------------------------------------

// WriteSnapshot atomically writes s as the checkpoint replaying from WAL
// segment seg, then removes superseded checkpoint files. All file
// operations go through fs (nil selects the real filesystem). The
// returned error is nil only once the new checkpoint is durably on disk:
// temp file written and fsynced, renamed into place, directory synced. A
// crash anywhere before that last barrier leaves at worst a stray .tmp
// file and the previous checkpoint intact.
func WriteSnapshot(fs fsys.FS, dir string, seg int, s *Snapshot) error {
	return WriteSnapshotVersion(fs, dir, seg, s, SnapV2)
}

// WriteSnapshotVersion is WriteSnapshot pinned to a specific format
// version. SnapV1 cannot represent compressed runs (Run.Comp) and exists
// for back-compat tests and downgrade tooling.
func WriteSnapshotVersion(fs fsys.FS, dir string, seg int, s *Snapshot, version int) error {
	magic := snapMagicV2
	if version == SnapV1 {
		magic = snapMagicV1
		for mi := range s.Measurements {
			for si := range s.Measurements[mi].Series {
				for ri := range s.Measurements[mi].Series[si].Runs {
					if s.Measurements[mi].Series[si].Runs[ri].Comp != nil {
						return errors.New("durable: v1 checkpoints cannot hold compressed runs")
					}
				}
			}
		}
	}
	if fs == nil {
		fs = fsys.OS{}
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	payload := appendSnapshot(nil, s, version)
	final := filepath.Join(dir, snapshotName(seg))
	tmp := final + ".tmp"
	f, err := fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	_, err = f.Write([]byte(magic))
	if err == nil {
		_, err = f.Write(payload)
	}
	if err == nil {
		var trailer [4]byte
		binary.LittleEndian.PutUint32(trailer[:], crc32.ChecksumIEEE(payload))
		_, err = f.Write(trailer[:])
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = fs.Remove(tmp)
		return err
	}
	if err := fs.Rename(tmp, final); err != nil {
		_ = fs.Remove(tmp)
		return err
	}
	if err := fs.SyncDir(dir); err != nil {
		return err
	}
	// The new checkpoint is durable; superseded ones and stray temp files
	// only waste space now.
	names, err := fs.ReadDirNames(dir)
	if err != nil {
		return err
	}
	for _, name := range names {
		if idx, ok := parseSnapshotName(name); ok && idx != seg {
			_ = fs.Remove(filepath.Join(dir, name))
		} else if strings.HasSuffix(name, ".snap.tmp") && name != filepath.Base(tmp) {
			_ = fs.Remove(filepath.Join(dir, name))
		}
	}
	return nil
}

// LoadLatestSnapshot loads the newest valid checkpoint in dir through fs
// (nil selects the real filesystem). It returns the snapshot and the WAL
// segment index replay must start from, or (nil, 0, nil) when no usable
// checkpoint exists. Corrupt checkpoint files are skipped in favour of
// older ones.
func LoadLatestSnapshot(fs fsys.FS, dir string) (*Snapshot, int, error) {
	if fs == nil {
		fs = fsys.OS{}
	}
	names, err := fs.ReadDirNames(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	var idxs []int
	for _, name := range names {
		if idx, ok := parseSnapshotName(name); ok {
			idxs = append(idxs, idx)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(idxs)))
	for _, idx := range idxs {
		data, err := fs.ReadFile(filepath.Join(dir, snapshotName(idx)))
		if err != nil {
			return nil, 0, err
		}
		if len(data) < len(snapMagicV2)+4 {
			continue
		}
		// Both formats stay readable: a store upgraded across the V2
		// cut recovers its existing V1 checkpoint and writes V2 from the
		// next checkpoint on.
		version := 0
		switch string(data[:len(snapMagicV2)]) {
		case snapMagicV1:
			version = SnapV1
		case snapMagicV2:
			version = SnapV2
		default:
			continue
		}
		payload := data[len(snapMagicV2) : len(data)-4]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[len(data)-4:]) {
			continue
		}
		s, err := decodeSnapshot(payload, version)
		if err != nil {
			continue
		}
		return s, idx, nil
	}
	return nil, 0, nil
}
