package tsdb

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/lineproto"
)

func newTestServer(t *testing.T) (*Store, *httptest.Server) {
	t.Helper()
	store := NewStore()
	srv := httptest.NewServer(NewHandler(store))
	t.Cleanup(srv.Close)
	return store, srv
}

func TestHTTPPing(t *testing.T) {
	_, srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/ping")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestHTTPWriteAndQuery(t *testing.T) {
	store, srv := newTestServer(t)
	body := "cpu,hostname=h1 value=0.5 1000000000\ncpu,hostname=h2 value=0.7 2000000000\n"
	resp, err := http.Post(srv.URL+"/write?db=lms", "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("write status %d", resp.StatusCode)
	}
	if store.DB("lms") == nil {
		t.Fatal("auto-create failed")
	}
	if n := store.DB("lms").PointCount(); n != 2 {
		t.Fatalf("points %d", n)
	}

	c := &Client{BaseURL: srv.URL, Database: "lms"}
	results, err := c.QueryString("SELECT value FROM cpu GROUP BY hostname")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || len(results[0].Series) != 2 {
		t.Fatalf("results %+v", results)
	}
}

func TestHTTPWritePrecision(t *testing.T) {
	store, srv := newTestServer(t)
	// Timestamp in seconds precision.
	resp, err := http.Post(srv.URL+"/write?db=lms&precision=s", "text/plain",
		strings.NewReader("cpu value=1 100\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	res, err := store.DB("lms").Select(Query{Measurement: "cpu"})
	if err != nil {
		t.Fatal(err)
	}
	if got := res[0].Rows[0].Time.Unix(); got != 100 {
		t.Fatalf("time %v", res[0].Rows[0].Time)
	}
}

func TestHTTPWriteErrors(t *testing.T) {
	_, srv := newTestServer(t)
	// Missing db.
	resp, _ := http.Post(srv.URL+"/write", "text/plain", strings.NewReader("cpu value=1"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing db: status %d", resp.StatusCode)
	}
	// Bad body.
	resp, _ = http.Post(srv.URL+"/write?db=lms", "text/plain", strings.NewReader("broken"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad body: status %d", resp.StatusCode)
	}
	// Bad precision.
	resp, _ = http.Post(srv.URL+"/write?db=lms&precision=parsec", "text/plain", strings.NewReader("cpu value=1"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad precision: status %d", resp.StatusCode)
	}
	// GET not allowed.
	resp, _ = http.Get(srv.URL + "/write?db=lms")
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET write: status %d", resp.StatusCode)
	}
}

func TestHTTPWriteNoAutoCreate(t *testing.T) {
	store := NewStore()
	h := NewHandler(store)
	h.AutoCreate = false
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, _ := http.Post(srv.URL+"/write?db=ghost", "text/plain", strings.NewReader("cpu value=1"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestHTTPQueryErrors(t *testing.T) {
	_, srv := newTestServer(t)
	resp, _ := http.Get(srv.URL + "/query")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing q: status %d", resp.StatusCode)
	}
	resp, _ = http.Get(srv.URL + "/query?q=NONSENSE")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad q: status %d", resp.StatusCode)
	}
}

func TestHTTPQueryPost(t *testing.T) {
	_, srv := newTestServer(t)
	resp, err := http.Post(srv.URL+"/query", "application/x-www-form-urlencoded",
		strings.NewReader("q=CREATE+DATABASE+x&db="))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestClientWritePoints(t *testing.T) {
	store, srv := newTestServer(t)
	c := &Client{BaseURL: srv.URL, Database: "lms"}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	pts := []lineproto.Point{
		{Measurement: "m", Fields: map[string]lineproto.Value{"v": lineproto.Float(1)}, Time: time.Unix(0, 1)},
		{Measurement: "m", Fields: map[string]lineproto.Value{"v": lineproto.Float(2)}, Time: time.Unix(0, 2)},
	}
	if err := c.WritePoints(pts); err != nil {
		t.Fatal(err)
	}
	if n := store.DB("lms").PointCount(); n != 2 {
		t.Fatalf("points %d", n)
	}
	// Query error propagation.
	if _, err := c.QueryString("SELECT value FROM m WHERE"); err == nil {
		t.Fatal("expected query error")
	}
}

func TestClientQueryEscaping(t *testing.T) {
	store, srv := newTestServer(t)
	db := store.CreateDatabase("lms")
	_ = db.WritePoint(lineproto.Point{
		Measurement: "cpu",
		Tags:        map[string]string{"hostname": "node 01"},
		Fields:      map[string]lineproto.Value{"value": lineproto.Float(3)},
		Time:        time.Unix(0, 5),
	})
	c := &Client{BaseURL: srv.URL, Database: "lms"}
	res, err := c.QueryString("SELECT value FROM cpu WHERE hostname = 'node 01'")
	if err != nil {
		t.Fatal(err)
	}
	// Client-decoded numbers arrive as json.Number so int64 payloads and
	// nanosecond epochs keep full precision.
	if len(res[0].Series) != 1 {
		t.Fatalf("res %+v", res)
	}
	if v, err := res[0].Series[0].Values[0][1].(json.Number).Float64(); err != nil || v != 3 {
		t.Fatalf("res %+v", res)
	}
}

func TestParseTimestampHelper(t *testing.T) {
	ts, err := ParseTimestamp("2017-08-04T10:00:00Z")
	if err != nil || ts.Year() != 2017 {
		t.Fatalf("%v %v", ts, err)
	}
	ts, err = ParseTimestamp(float64(1500))
	if err != nil || ts.UnixNano() != 1500 {
		t.Fatalf("%v %v", ts, err)
	}
	if _, err := ParseTimestamp(struct{}{}); err == nil {
		t.Fatal("expected error")
	}
	if _, err := ParseTimestamp("notatime"); err == nil {
		t.Fatal("expected error")
	}
}

func TestHTTPEndToEndEventAnnotations(t *testing.T) {
	// Router-style event write followed by dashboard-style query, the
	// "signals are forwarded into the database to be used later as
	// annotations" flow of Sect. III-B.
	_, srv := newTestServer(t)
	c := &Client{BaseURL: srv.URL, Database: "lms"}
	ev := lineproto.Point{
		Measurement: "events",
		Tags:        map[string]string{"jobid": "42", "type": "jobstart"},
		Fields:      map[string]lineproto.Value{"text": lineproto.String("job 42 started on h1,h2")},
		Time:        time.Unix(100, 0),
	}
	if err := c.WritePoints([]lineproto.Point{ev}); err != nil {
		t.Fatal(err)
	}
	res, err := c.QueryString("SELECT text FROM events WHERE jobid = '42'")
	if err != nil {
		t.Fatal(err)
	}
	got := res[0].Series[0].Values[0][1].(string)
	if got != "job 42 started on h1,h2" {
		t.Fatalf("event text %q", got)
	}
}
