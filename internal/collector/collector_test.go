package collector

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/hpm"
	"repro/internal/lineproto"
	"repro/internal/proc"
	"repro/internal/workload"
)

func ts(sec int64) time.Time { return time.Unix(sec, 0).UTC() }

type memSink struct {
	mu       sync.Mutex
	payloads [][]byte
	fail     bool
}

func (s *memSink) send(p []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fail {
		return errors.New("down")
	}
	s.payloads = append(s.payloads, append([]byte(nil), p...))
	return nil
}

func (s *memSink) points(t *testing.T) []lineproto.Point {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []lineproto.Point
	for _, p := range s.payloads {
		pts, err := lineproto.Parse(p)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, pts...)
	}
	return out
}

type stubPlugin struct {
	name string
	pts  []lineproto.Point
	err  error
}

func (p *stubPlugin) Name() string { return p.name }
func (p *stubPlugin) Collect(now time.Time) ([]lineproto.Point, error) {
	return p.pts, p.err
}

func newAgent(t *testing.T, sink *memSink) *Agent {
	t.Helper()
	a, err := New(Config{Hostname: "node01", Sink: sink.send, ExtraTags: map[string]string{"cluster": "emmy"}})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAgentValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := New(Config{Hostname: "h"}); err == nil {
		t.Error("missing endpoint accepted")
	}
}

func TestAgentTagsAndPush(t *testing.T) {
	sink := &memSink{}
	a := newAgent(t, sink)
	_ = a.Register(&stubPlugin{name: "p1", pts: []lineproto.Point{
		{Measurement: "m", Fields: map[string]lineproto.Value{"v": lineproto.Float(1)}},
	}})
	if err := a.CollectAndPush(ts(100)); err != nil {
		t.Fatal(err)
	}
	pts := sink.points(t)
	if len(pts) != 1 {
		t.Fatalf("points %d", len(pts))
	}
	p := pts[0]
	if p.Tags["hostname"] != "node01" || p.Tags["cluster"] != "emmy" {
		t.Fatalf("tags %v", p.Tags)
	}
	if !p.Time.Equal(ts(100)) {
		t.Fatalf("time %v", p.Time)
	}
	collected, fails := a.Stats()
	if collected != 1 || fails != 0 {
		t.Fatalf("stats %d %d", collected, fails)
	}
}

func TestAgentPluginTagsWin(t *testing.T) {
	sink := &memSink{}
	a := newAgent(t, sink)
	_ = a.Register(&stubPlugin{name: "p1", pts: []lineproto.Point{
		{Measurement: "m", Tags: map[string]string{"hostname": "other"},
			Fields: map[string]lineproto.Value{"v": lineproto.Float(1)}, Time: ts(50)},
	}})
	_ = a.CollectAndPush(ts(100))
	p := sink.points(t)[0]
	if p.Tags["hostname"] != "other" || !p.Time.Equal(ts(50)) {
		t.Fatalf("plugin values overridden: %+v", p)
	}
}

func TestAgentPluginErrorSkipsOnlyThatPlugin(t *testing.T) {
	sink := &memSink{}
	var gotPlugin string
	a, _ := New(Config{
		Hostname: "h", Sink: sink.send,
		OnError: func(plugin string, err error) { gotPlugin = plugin },
	})
	_ = a.Register(&stubPlugin{name: "bad", err: errors.New("boom")})
	_ = a.Register(&stubPlugin{name: "good", pts: []lineproto.Point{
		{Measurement: "m", Fields: map[string]lineproto.Value{"v": lineproto.Float(1)}},
	}})
	if err := a.CollectAndPush(ts(1)); err != nil {
		t.Fatal(err)
	}
	if len(sink.points(t)) != 1 {
		t.Fatal("good plugin data lost")
	}
	if gotPlugin != "bad" {
		t.Fatalf("OnError plugin %q", gotPlugin)
	}
}

func TestAgentDuplicatePlugin(t *testing.T) {
	a := newAgent(t, &memSink{})
	_ = a.Register(&stubPlugin{name: "p"})
	if err := a.Register(&stubPlugin{name: "p"}); err == nil {
		t.Fatal("duplicate accepted")
	}
	if got := a.Plugins(); len(got) != 1 || got[0] != "p" {
		t.Fatalf("plugins %v", got)
	}
}

func TestAgentPushFailure(t *testing.T) {
	sink := &memSink{fail: true}
	a := newAgent(t, sink)
	_ = a.Register(&stubPlugin{name: "p1", pts: []lineproto.Point{
		{Measurement: "m", Fields: map[string]lineproto.Value{"v": lineproto.Float(1)}},
	}})
	if err := a.CollectAndPush(ts(1)); err == nil {
		t.Fatal("expected push error")
	}
	_, fails := a.Stats()
	if fails != 1 {
		t.Fatalf("fails %d", fails)
	}
	// Empty batch is a no-op.
	if err := a.Push(nil); err != nil {
		t.Fatal(err)
	}
}

func TestAgentRunLoop(t *testing.T) {
	sink := &memSink{}
	a, _ := New(Config{Hostname: "h", Sink: sink.send, Interval: 10 * time.Millisecond})
	_ = a.Register(&stubPlugin{name: "p1", pts: []lineproto.Point{
		{Measurement: "m", Fields: map[string]lineproto.Value{"v": lineproto.Float(1)}},
	}})
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { a.Run(stop); close(done) }()
	deadline := time.After(5 * time.Second)
	for len(sink.points(t)) < 2 {
		select {
		case <-deadline:
			t.Fatal("run loop produced no data")
		default:
			time.Sleep(5 * time.Millisecond)
		}
	}
	close(stop)
	<-done
}

func newProcState(t *testing.T) *proc.State {
	t.Helper()
	st, err := proc.NewState("node01", 4, 16*1024*1024)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestLoadPlugin(t *testing.T) {
	st := newProcState(t)
	st.SetRunnable(3)
	for i := 0; i < 120; i++ {
		_ = st.Tick(1)
	}
	p := &LoadPlugin{FS: st}
	pts, err := p.Collect(ts(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].Measurement != "load" {
		t.Fatalf("%+v", pts)
	}
	if pts[0].Fields["load1"].FloatVal() < 2 {
		t.Fatalf("load1 %v", pts[0].Fields["load1"])
	}
	if pts[0].Fields["runnable"].IntVal() != 3 {
		t.Fatalf("runnable %+v", pts[0].Fields)
	}
}

func TestCPUPluginRates(t *testing.T) {
	st := newProcState(t)
	_ = st.SetCPULoad(0, 1.0, 0)
	_ = st.SetCPULoad(1, 0.5, 0)
	p := &CPUPlugin{FS: st, PerCore: true}
	// First collect primes the snapshot.
	pts, err := p.Collect(ts(0))
	if err != nil || pts != nil {
		t.Fatalf("first collect: %v %v", pts, err)
	}
	_ = st.Tick(10)
	pts, err = p.Collect(ts(10))
	if err != nil {
		t.Fatal(err)
	}
	// 1 aggregate + 4 per-core points.
	if len(pts) != 5 {
		t.Fatalf("points %d", len(pts))
	}
	agg := pts[0]
	// Two of four cores at 1.0 and 0.5 => aggregate 37.5% busy.
	if got := agg.Fields["percent"].FloatVal(); math.Abs(got-37.5) > 0.5 {
		t.Fatalf("aggregate percent %v", got)
	}
	var core0 lineproto.Point
	for _, pt := range pts[1:] {
		if pt.Tags["core"] == "0" {
			core0 = pt
		}
	}
	if got := core0.Fields["user"].FloatVal(); math.Abs(got-100) > 0.5 {
		t.Fatalf("core0 user %v", got)
	}
}

func TestMemoryPlugin(t *testing.T) {
	st := newProcState(t)
	st.SetMemUsed(4 * 1024 * 1024)
	p := &MemoryPlugin{FS: st}
	pts, err := p.Collect(ts(1))
	if err != nil {
		t.Fatal(err)
	}
	f := pts[0].Fields
	if f["used_kb"].IntVal() != 4*1024*1024 {
		t.Fatalf("used %+v", f)
	}
	if got := f["used_percent"].FloatVal(); math.Abs(got-25) > 0.1 {
		t.Fatalf("percent %v", got)
	}
}

func TestNetworkPluginRates(t *testing.T) {
	st := newProcState(t)
	st.SetNetRates(2e6, 1e6)
	p := &NetworkPlugin{FS: st}
	_, _ = p.Collect(ts(0))
	_ = st.Tick(10)
	pts, err := p.Collect(ts(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 { // lo excluded by default
		t.Fatalf("points %+v", pts)
	}
	if pts[0].Tags["interface"] != "eth0" {
		t.Fatalf("iface %v", pts[0].Tags)
	}
	if got := pts[0].Fields["rx_bytes_per_s"].FloatVal(); math.Abs(got-2e6) > 1e3 {
		t.Fatalf("rx rate %v", got)
	}
	// Interface filter.
	p2 := &NetworkPlugin{FS: st, Interfaces: []string{"lo"}}
	_, _ = p2.Collect(ts(10))
	_ = st.Tick(1)
	pts, _ = p2.Collect(ts(11))
	if len(pts) != 1 || pts[0].Tags["interface"] != "lo" {
		t.Fatalf("filtered %+v", pts)
	}
}

func TestDiskPluginRates(t *testing.T) {
	st := newProcState(t)
	st.SetDiskRates(1e6, 5e5)
	p := &DiskPlugin{FS: st}
	_, _ = p.Collect(ts(0))
	_ = st.Tick(10)
	pts, err := p.Collect(ts(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 1 || pts[0].Tags["device"] != "sda" {
		t.Fatalf("%+v", pts)
	}
	if got := pts[0].Fields["read_bytes_per_s"].FloatVal(); math.Abs(got-1e6) > 1e3 {
		t.Fatalf("read rate %v", got)
	}
	if got := pts[0].Fields["write_bytes_per_s"].FloatVal(); math.Abs(got-5e5) > 1e3 {
		t.Fatalf("write rate %v", got)
	}
}

func TestHPMPluginTimeline(t *testing.T) {
	topo := hpm.Topology{Sockets: 1, CoresPerSocket: 4, ThreadsPerCore: 1, BaseClockMHz: 2200}
	m, err := hpm.NewMachine(topo)
	if err != nil {
		t.Fatal(err)
	}
	w := workload.NewTriad(4, 1000)
	for core := 0; core < 4; core++ {
		_ = m.SetRates(core, w.ProfileAt(1, core).Rates(2200))
	}
	p := &HPMPlugin{Machine: m, GroupName: "MEM_DP", PerThread: true}
	// First cycle arms.
	pts, err := p.Collect(ts(0))
	if err != nil || pts != nil {
		t.Fatalf("arming cycle: %v %v", pts, err)
	}
	_ = m.Advance(10)
	pts, err = p.Collect(ts(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 { // 1 node + 4 threads
		t.Fatalf("points %d", len(pts))
	}
	node := pts[0]
	if node.Measurement != "likwid_mem_dp" {
		t.Fatalf("measurement %q", node.Measurement)
	}
	bw := node.Fields["memory_bandwidth_mbytes_s"].FloatVal()
	wantBW := 4 * 6e9 / 1e6 // 4 cores x 6 GB/s in MB/s
	if math.Abs(bw-wantBW)/wantBW > 0.02 {
		t.Fatalf("bandwidth %v want ~%v", bw, wantBW)
	}
	flops := node.Fields["dp_mflop_s"].FloatVal()
	wantFlops := 4 * (6e9 / 24 * 2) / 1e6
	if math.Abs(flops-wantFlops)/wantFlops > 0.02 {
		t.Fatalf("flops %v want ~%v", flops, wantFlops)
	}
	// CPI is intensive: node value close to the per-thread value, not 4x.
	cpi := node.Fields["cpi"].FloatVal()
	thread := pts[1]
	tcpi := thread.Fields["cpi"].FloatVal()
	if math.Abs(cpi-tcpi) > 0.2*tcpi {
		t.Fatalf("cpi aggregation: node %v thread %v", cpi, tcpi)
	}
	// Continuous timeline: next window works without re-arming.
	_ = m.Advance(10)
	pts, err = p.Collect(ts(20))
	if err != nil || len(pts) != 5 {
		t.Fatalf("second window: %d %v", len(pts), err)
	}
}

func TestHPMPluginBadGroup(t *testing.T) {
	m, _ := hpm.NewMachine(hpm.DefaultTopology())
	p := &HPMPlugin{Machine: m, GroupName: "NOPE"}
	if _, err := p.Collect(ts(0)); err == nil {
		t.Fatal("bad group accepted")
	}
}

func TestSanitizeFieldKey(t *testing.T) {
	cases := map[string]string{
		"DP MFLOP/s":                  "dp_mflop_s",
		"Memory bandwidth [MBytes/s]": "memory_bandwidth_mbytes_s",
		"Runtime (RDTSC) [s]":         "runtime_rdtsc_s",
		"CPI":                         "cpi",
		"L1 DTLB load miss rate":      "l1_dtlb_load_miss_rate",
		"Clock [MHz]":                 "clock_mhz",
		"  weird   spacing  ":         "weird_spacing",
	}
	for in, want := range cases {
		if got := SanitizeFieldKey(in); got != want {
			t.Errorf("%q -> %q, want %q", in, got, want)
		}
	}
}

func TestSumMetricClassification(t *testing.T) {
	sums := []string{"DP MFLOP/s", "Memory bandwidth [MBytes/s]", "Memory data volume [GBytes]", "Energy [J]", "MIPS", "Packed MUOPS/s", "L1 DTLB load misses"}
	means := []string{"CPI", "IPC", "Clock [MHz]", "Branch rate", "Load to store ratio", "Operational intensity"}
	for _, n := range sums {
		if !SumMetric(n) {
			t.Errorf("%q should sum", n)
		}
	}
	for _, n := range means {
		if SumMetric(n) {
			t.Errorf("%q should average", n)
		}
	}
}

func TestFullNodeAgentCycle(t *testing.T) {
	// A node with proc + hpm, all plugins registered, two collection cycles.
	st := newProcState(t)
	_ = st.SetCPULoad(0, 0.9, 0.05)
	st.SetRunnable(1)
	st.SetMemUsed(1024 * 1024)
	st.SetNetRates(1e6, 1e6)
	st.SetDiskRates(1e5, 1e5)
	topo := hpm.Topology{Sockets: 1, CoresPerSocket: 4, ThreadsPerCore: 1, BaseClockMHz: 2200}
	m, _ := hpm.NewMachine(topo)
	_ = m.SetRates(0, workload.NewDGEMM(1, 1000).ProfileAt(1, 0).Rates(2200))

	sink := &memSink{}
	a, _ := New(Config{Hostname: "node01", Sink: sink.send})
	for _, p := range []Plugin{
		&LoadPlugin{FS: st},
		&CPUPlugin{FS: st},
		&MemoryPlugin{FS: st},
		&NetworkPlugin{FS: st},
		&DiskPlugin{FS: st},
		&HPMPlugin{Machine: m, GroupName: "FLOPS_DP"},
	} {
		if err := a.Register(p); err != nil {
			t.Fatal(err)
		}
	}
	_ = a.CollectAndPush(ts(0))
	_ = st.Tick(10)
	_ = m.Advance(10)
	if err := a.CollectAndPush(ts(10)); err != nil {
		t.Fatal(err)
	}
	byMeas := map[string]int{}
	for _, p := range sink.points(t) {
		byMeas[p.Measurement]++
		if p.Tags["hostname"] != "node01" {
			t.Fatalf("untagged point %+v", p)
		}
	}
	for _, meas := range []string{"load", "cpu", "memory", "network", "disk", "likwid_flops_dp"} {
		if byMeas[meas] == 0 {
			t.Errorf("measurement %q missing (got %v)", meas, byMeas)
		}
	}
}

func TestCPUPluginCoreCountChange(t *testing.T) {
	// If the per-core snapshot shape changes between cycles, per-core data
	// is skipped rather than mis-attributed.
	st4 := newProcState(t)
	st2, _ := proc.NewState("node01", 2, 1024*1024)
	_ = st4.Tick(1)
	_ = st2.Tick(1)
	p := &CPUPlugin{FS: st4, PerCore: true}
	_, _ = p.Collect(ts(0))
	p.FS = st2
	_ = st2.Tick(1)
	pts, err := p.Collect(ts(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range pts {
		if pt.Measurement == "cpu_core" {
			t.Fatalf("per-core point with mismatched shape: %+v", pt)
		}
	}
}

func TestPluginNames(t *testing.T) {
	st := newProcState(t)
	m, _ := hpm.NewMachine(hpm.DefaultTopology())
	names := map[Plugin]string{
		&LoadPlugin{FS: st}:                           "load",
		&CPUPlugin{FS: st}:                            "cpu",
		&MemoryPlugin{FS: st}:                         "memory",
		&NetworkPlugin{FS: st}:                        "network",
		&DiskPlugin{FS: st}:                           "disk",
		&HPMPlugin{Machine: m, GroupName: "FLOPS_DP"}: "likwid_flops_dp",
	}
	for p, want := range names {
		if p.Name() != want {
			t.Errorf("%T name %q want %q", p, p.Name(), want)
		}
	}
}

func BenchmarkSanitizeFieldKey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = SanitizeFieldKey("Memory bandwidth [MBytes/s]")
	}
}
