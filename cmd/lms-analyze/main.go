// Command lms-analyze performs the offline in-depth analysis of Sect. V on
// a job's monitoring data: the resource-utilization evaluation table
// (Fig. 2), pathological-interval detection with threshold + timeout rules
// (Fig. 4) and the performance-pattern decision tree.
//
// Data is loaded from a line-protocol dump file (as produced by recording
// the router stream or exporting from the database).
//
// Usage:
//
//	lms-analyze -data job.lp -job 42 -user alice -nodes node01,node02 \
//	            -start 2017-08-04T10:00:00Z -end 2017-08-04T12:00:00Z
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/lineproto"
	"repro/internal/tsdb"
)

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "lms-analyze: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	dataPath := flag.String("data", "", "line-protocol dump file (required)")
	jobID := flag.String("job", "", "job id (required)")
	user := flag.String("user", "", "job owner")
	nodesArg := flag.String("nodes", "", "comma-separated node list (default: hostnames found in the data)")
	startArg := flag.String("start", "", "job start (RFC3339; default: earliest sample)")
	endArg := flag.String("end", "", "job end (RFC3339; default: latest sample)")
	peakBW := flag.Float64("peak-membw", 60000, "achievable node memory bandwidth [MB/s] for the pattern tree")
	peakFlops := flag.Float64("peak-flops", 352000, "peak node DP rate [MFLOP/s] for the pattern tree")
	flag.Parse()

	if *dataPath == "" || *jobID == "" {
		flag.Usage()
		os.Exit(2)
	}
	raw, err := os.ReadFile(*dataPath)
	if err != nil {
		fatalf("%v", err)
	}
	pts, err := lineproto.Parse(raw)
	if err != nil {
		fatalf("parse %s: %v", *dataPath, err)
	}
	if len(pts) == 0 {
		fatalf("no points in %s", *dataPath)
	}
	db := tsdb.NewDB("offline")
	if err := db.WritePoints(pts); err != nil {
		fatalf("load: %v", err)
	}

	var nodes []string
	if *nodesArg != "" {
		nodes = strings.Split(*nodesArg, ",")
	} else {
		nodes = db.TagValues("", "hostname")
	}
	if len(nodes) == 0 {
		fatalf("no nodes given and no hostname tags found")
	}

	start, end := pts[0].Time, pts[0].Time
	for _, p := range pts {
		if p.Time.Before(start) {
			start = p.Time
		}
		if p.Time.After(end) {
			end = p.Time
		}
	}
	if *startArg != "" {
		if start, err = time.Parse(time.RFC3339, *startArg); err != nil {
			fatalf("bad -start: %v", err)
		}
	}
	if *endArg != "" {
		if end, err = time.Parse(time.RFC3339, *endArg); err != nil {
			fatalf("bad -end: %v", err)
		}
	}

	ev := &analysis.Evaluator{DB: db, PeakMemBWMBs: *peakBW, PeakDPMFlops: *peakFlops}
	rep, err := ev.Evaluate(analysis.JobMeta{
		ID: *jobID, User: *user, Nodes: nodes, Start: start, End: end,
	})
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Print(rep.FormatTable())
	if rep.Pathological() {
		os.Exit(3) // scriptable: non-zero for flagged jobs
	}
}
