package lineproto

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func ts(ns int64) time.Time { return time.Unix(0, ns).UTC() }

func TestEncodeBasic(t *testing.T) {
	p := Point{
		Measurement: "cpu_load",
		Tags:        map[string]string{"hostname": "h1", "jobid": "42"},
		Fields:      map[string]Value{"value": Float(1.5)},
		Time:        ts(1000),
	}
	got, err := EncodePoint(p)
	if err != nil {
		t.Fatal(err)
	}
	want := "cpu_load,hostname=h1,jobid=42 value=1.5 1000"
	if string(got) != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestEncodeSortsTagsAndFields(t *testing.T) {
	p := Point{
		Measurement: "m",
		Tags:        map[string]string{"z": "1", "a": "2", "m": "3"},
		Fields:      map[string]Value{"zz": Int(1), "aa": Int(2)},
		Time:        ts(7),
	}
	got, err := EncodePoint(p)
	if err != nil {
		t.Fatal(err)
	}
	want := "m,a=2,m=3,z=1 aa=2i,zz=1i 7"
	if string(got) != want {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestEncodeEscaping(t *testing.T) {
	p := Point{
		Measurement: "my measure,ment",
		Tags:        map[string]string{"ta g": "va,l=ue"},
		Fields:      map[string]Value{"f,= ield": Float(1)},
		Time:        ts(1),
	}
	got, err := EncodePoint(p)
	if err != nil {
		t.Fatal(err)
	}
	want := `my\ measure\,ment,ta\ g=va\,l\=ue f\,\=\ ield=1 1`
	if string(got) != want {
		t.Fatalf("got %q want %q", got, want)
	}
	back, err := ParseLine(string(got))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(p) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, p)
	}
}

func TestEncodeStringField(t *testing.T) {
	p := Point{
		Measurement: "events",
		Tags:        map[string]string{"hostname": "h1"},
		Fields:      map[string]Value{"text": String(`job "start" via \curl`)},
		Time:        ts(5),
	}
	enc, err := EncodePoint(p)
	if err != nil {
		t.Fatal(err)
	}
	want := `events,hostname=h1 text="job \"start\" via \\curl" 5`
	if string(enc) != want {
		t.Fatalf("got %q want %q", enc, want)
	}
	back, err := ParseLine(string(enc))
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Fields["text"].StringVal(); got != `job "start" via \curl` {
		t.Fatalf("string round trip got %q", got)
	}
}

func TestEncodeValueKinds(t *testing.T) {
	p := Point{
		Measurement: "m",
		Fields: map[string]Value{
			"f": Float(2.25),
			"i": Int(-7),
			"b": Bool(true),
			"s": String("x"),
		},
		Time: ts(9),
	}
	enc, err := EncodePoint(p)
	if err != nil {
		t.Fatal(err)
	}
	want := `m b=true,f=2.25,i=-7i,s="x" 9`
	if string(enc) != want {
		t.Fatalf("got %q want %q", enc, want)
	}
}

func TestEncodeNoTimestamp(t *testing.T) {
	p := Point{Measurement: "m", Fields: map[string]Value{"v": Float(1)}}
	enc, err := EncodePoint(p)
	if err != nil {
		t.Fatal(err)
	}
	if string(enc) != "m v=1" {
		t.Fatalf("got %q", enc)
	}
	back, err := ParseLine(string(enc))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Time.IsZero() {
		t.Fatalf("expected zero time, got %v", back.Time)
	}
}

func TestEncodeInvalid(t *testing.T) {
	cases := []Point{
		{},                 // empty measurement
		{Measurement: "m"}, // no fields
		{Measurement: "m", Fields: map[string]Value{"": Float(1)}},                                    // empty field key
		{Measurement: "m", Tags: map[string]string{"": "v"}, Fields: map[string]Value{"f": Float(1)}}, // empty tag key
		{Measurement: "m", Tags: map[string]string{"t": ""}, Fields: map[string]Value{"f": Float(1)}}, // empty tag value
	}
	for i, p := range cases {
		if _, err := EncodePoint(p); err == nil {
			t.Errorf("case %d: expected error for %+v", i, p)
		}
	}
}

func TestParseBasic(t *testing.T) {
	p, err := ParseLine("likwid_flops_dp,hostname=node07,jobid=1234.master mflops=2345.5 1500000000000000000")
	if err != nil {
		t.Fatal(err)
	}
	if p.Measurement != "likwid_flops_dp" {
		t.Errorf("measurement %q", p.Measurement)
	}
	if p.Tags["hostname"] != "node07" || p.Tags["jobid"] != "1234.master" {
		t.Errorf("tags %v", p.Tags)
	}
	if v := p.Fields["mflops"]; v.Kind() != KindFloat || v.FloatVal() != 2345.5 {
		t.Errorf("field %v", v)
	}
	if p.Time.UnixNano() != 1500000000000000000 {
		t.Errorf("time %v", p.Time)
	}
}

func TestParseMultipleFields(t *testing.T) {
	p, err := ParseLine(`mem,hostname=h1 used=5.5,free=2.5,total=8i,swapped=f,state="ok" 42`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Fields) != 5 {
		t.Fatalf("fields %v", p.Fields)
	}
	if p.Fields["total"].Kind() != KindInt || p.Fields["total"].IntVal() != 8 {
		t.Errorf("total %v", p.Fields["total"])
	}
	if p.Fields["swapped"].BoolVal() {
		t.Errorf("swapped should be false")
	}
	if p.Fields["state"].StringVal() != "ok" {
		t.Errorf("state %v", p.Fields["state"])
	}
}

func TestParseNoTags(t *testing.T) {
	p, err := ParseLine("m value=1 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Tags) != 0 {
		t.Fatalf("tags %v", p.Tags)
	}
}

func TestParseBoolForms(t *testing.T) {
	for _, s := range []string{"t", "T", "true", "True", "TRUE"} {
		p, err := ParseLine("m v=" + s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if !p.Fields["v"].BoolVal() {
			t.Errorf("%s parsed as false", s)
		}
	}
	for _, s := range []string{"f", "F", "false", "False", "FALSE"} {
		p, err := ParseLine("m v=" + s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if p.Fields["v"].BoolVal() {
			t.Errorf("%s parsed as true", s)
		}
	}
}

func TestParseScientificFloat(t *testing.T) {
	p, err := ParseLine("m v=1.5e9 1")
	if err != nil {
		t.Fatal(err)
	}
	if p.Fields["v"].FloatVal() != 1.5e9 {
		t.Errorf("got %v", p.Fields["v"])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"measurementonly",
		"m,tag v=1",         // tag without =
		"m,=v f=1",          // empty tag key
		"m,k= f=1",          // empty tag value
		"m f=",              // empty field value
		"m f=1x2",           // garbage value
		"m f=1 notatime",    // bad timestamp
		`m f="unterminated`, // unterminated string
		"m =1",              // empty field key
		"m f=1,",            // trailing comma -> empty field key
		"m f=12i3",          // bad int
	}
	for _, s := range bad {
		if _, err := ParseLine(s); err == nil {
			t.Errorf("expected error for %q", s)
		}
	}
}

func TestParseBatchSkipsCommentsAndBlanks(t *testing.T) {
	data := []byte("# comment line\n\ncpu value=1 10\n   \nmem value=2 20\n# trailing\n")
	pts, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].Measurement != "cpu" || pts[1].Measurement != "mem" {
		t.Fatalf("points %v", pts)
	}
}

func TestParseBatchReportsLineNumber(t *testing.T) {
	data := []byte("cpu value=1 10\nbroken\n")
	_, err := Parse(data)
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("expected ParseError, got %v", err)
	}
	if pe.Line != 2 {
		t.Fatalf("line %d", pe.Line)
	}
}

func TestParseCRLF(t *testing.T) {
	pts, err := Parse([]byte("cpu value=1 10\r\nmem value=2 20\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d", len(pts))
	}
}

func TestValueConversions(t *testing.T) {
	if Float(2.9).IntVal() != 2 {
		t.Error("float->int")
	}
	if Int(3).FloatVal() != 3.0 {
		t.Error("int->float")
	}
	if !Bool(true).BoolVal() || Bool(false).BoolVal() {
		t.Error("bool")
	}
	if Bool(true).FloatVal() != 1 {
		t.Error("bool->float")
	}
	if String("true").BoolVal() != true {
		t.Error("string true")
	}
	if Float(1.5).StringVal() != "1.5" {
		t.Error("float string")
	}
	if Int(-2).StringVal() != "-2" {
		t.Error("int string")
	}
	if Bool(true).StringVal() != "true" || Bool(false).StringVal() != "false" {
		t.Error("bool string")
	}
	if KindFloat.String() != "float" || KindInt.String() != "int" ||
		KindBool.String() != "bool" || KindString.String() != "string" {
		t.Error("kind names")
	}
}

func TestValueEqualNaN(t *testing.T) {
	if !Float(math.NaN()).Equal(Float(math.NaN())) {
		t.Error("NaN should equal NaN for round-trip checks")
	}
	if Float(1).Equal(Int(1)) {
		t.Error("kinds differ")
	}
}

func TestPointClone(t *testing.T) {
	p := Point{
		Measurement: "m",
		Tags:        map[string]string{"a": "1"},
		Fields:      map[string]Value{"f": Float(1)},
		Time:        ts(3),
	}
	c := p.Clone()
	c.Tags["a"] = "changed"
	c.Fields["f"] = Float(2)
	if p.Tags["a"] != "1" || p.Fields["f"].FloatVal() != 1 {
		t.Fatal("clone shares maps with original")
	}
	if !p.Equal(p.Clone()) {
		t.Fatal("clone not equal to original")
	}
}

func TestPointEqual(t *testing.T) {
	base := Point{Measurement: "m", Tags: map[string]string{"a": "1"},
		Fields: map[string]Value{"f": Float(1)}, Time: ts(1)}
	diffs := []Point{
		{Measurement: "x", Tags: base.Tags, Fields: base.Fields, Time: base.Time},
		{Measurement: "m", Tags: map[string]string{"a": "2"}, Fields: base.Fields, Time: base.Time},
		{Measurement: "m", Tags: map[string]string{"b": "1"}, Fields: base.Fields, Time: base.Time},
		{Measurement: "m", Tags: base.Tags, Fields: map[string]Value{"f": Float(2)}, Time: base.Time},
		{Measurement: "m", Tags: base.Tags, Fields: map[string]Value{"g": Float(1)}, Time: base.Time},
		{Measurement: "m", Tags: base.Tags, Fields: base.Fields, Time: ts(2)},
		{Measurement: "m", Fields: base.Fields, Time: base.Time},
	}
	if !base.Equal(base.Clone()) {
		t.Fatal("self equality")
	}
	for i, d := range diffs {
		if base.Equal(d) {
			t.Errorf("diff %d compared equal", i)
		}
	}
}

// randomPoint builds an arbitrary but valid point from the rand source.
func randomPoint(r *rand.Rand) Point {
	randStr := func(allowEmpty bool) string {
		chars := `abz,= "\xyZ09._-`
		n := r.Intn(8)
		if !allowEmpty {
			n++
		}
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(chars[r.Intn(len(chars))])
		}
		return b.String()
	}
	p := Point{
		Measurement: randStr(false),
		Fields:      map[string]Value{},
		Time:        time.Unix(0, r.Int63()).UTC(),
	}
	for i := r.Intn(4); i > 0; i-- {
		k, v := randStr(false), randStr(false)
		if p.Tags == nil {
			p.Tags = map[string]string{}
		}
		p.Tags[k] = v
	}
	nf := r.Intn(4) + 1
	for i := 0; i < nf; i++ {
		k := randStr(false)
		switch r.Intn(4) {
		case 0:
			p.Fields[k] = Float(math.Round(r.NormFloat64()*1e6) / 1e3)
		case 1:
			p.Fields[k] = Int(r.Int63() - r.Int63())
		case 2:
			p.Fields[k] = Bool(r.Intn(2) == 0)
		default:
			p.Fields[k] = String(randStr(true))
		}
	}
	return p
}

// Property: Parse(Encode(p)) == p for arbitrary valid points.
func TestRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		_ = seed
		p := randomPoint(r)
		enc, err := EncodePoint(p)
		if err != nil {
			t.Logf("encode error for %+v: %v", p, err)
			return false
		}
		back, err := ParseLine(string(enc))
		if err != nil {
			t.Logf("parse error for %q: %v", enc, err)
			return false
		}
		if !back.Equal(p) {
			t.Logf("mismatch:\n in: %+v\nenc: %q\nout: %+v", p, enc, back)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: batch encode/parse preserves order and count.
func TestBatchRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		_ = seed
		n := r.Intn(20) + 1
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = randomPoint(r)
		}
		enc, err := Encode(pts)
		if err != nil {
			return false
		}
		back, err := Parse(enc)
		if err != nil || len(back) != n {
			return false
		}
		for i := range pts {
			if !back[i].Equal(pts[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchAdd(t *testing.T) {
	b := NewBatch(map[string]string{"hostname": "h1", "cluster": "test"})
	now := ts(100)
	err := b.Add(Point{Measurement: "cpu", Fields: map[string]Value{"v": Float(1)}}, now)
	if err != nil {
		t.Fatal(err)
	}
	err = b.Add(Point{
		Measurement: "cpu",
		Tags:        map[string]string{"hostname": "override"},
		Fields:      map[string]Value{"v": Float(2)},
		Time:        ts(200),
	}, now)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Fatalf("len %d", b.Len())
	}
	if b.Size() == 0 {
		t.Fatal("size 0")
	}
	pts, err := Parse(b.Flush())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points %d", len(pts))
	}
	if pts[0].Tags["hostname"] != "h1" || pts[0].Tags["cluster"] != "test" {
		t.Errorf("default tags not applied: %v", pts[0].Tags)
	}
	if !pts[0].Time.Equal(now) {
		t.Errorf("timestamp not assigned: %v", pts[0].Time)
	}
	if pts[1].Tags["hostname"] != "override" {
		t.Errorf("explicit tag should win: %v", pts[1].Tags)
	}
	if !pts[1].Time.Equal(ts(200)) {
		t.Errorf("explicit time should win: %v", pts[1].Time)
	}
	if b.Len() != 0 || b.Flush() != nil {
		t.Error("flush should reset")
	}
}

func TestBatchAddInvalid(t *testing.T) {
	b := NewBatch(nil)
	if err := b.Add(Point{}, ts(1)); err == nil {
		t.Fatal("expected error")
	}
	if b.Len() != 0 {
		t.Fatal("invalid point buffered")
	}
}

func TestBatchConcurrent(t *testing.T) {
	b := NewBatch(nil)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				_ = b.Add(Point{Measurement: "m", Fields: map[string]Value{"v": Int(int64(i))}}, ts(int64(i)))
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	pts, err := Parse(b.Flush())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 800 {
		t.Fatalf("got %d points", len(pts))
	}
}

func TestParseErrorMessageTruncation(t *testing.T) {
	long := strings.Repeat("x", 200)
	_, err := ParseLine(long)
	if err == nil {
		t.Fatal("expected error")
	}
	if len(err.Error()) > 200 {
		t.Errorf("error message too long: %d bytes", len(err.Error()))
	}
}

func TestReflectDeepEqualAfterClone(t *testing.T) {
	p := randomPoint(rand.New(rand.NewSource(3)))
	if !reflect.DeepEqual(p, p.Clone()) {
		t.Fatal("clone differs structurally")
	}
}

func TestAppendFieldsSortedAndReusable(t *testing.T) {
	p := Point{
		Measurement: "m",
		Fields: map[string]Value{
			"zeta":  Float(1),
			"alpha": Int(2),
			"mid":   String("x"),
			"beta":  Bool(true),
		},
	}
	var buf []Field
	for round := 0; round < 3; round++ {
		buf = p.AppendFields(buf[:0])
		if len(buf) != 4 {
			t.Fatalf("round %d: %d fields", round, len(buf))
		}
		want := []string{"alpha", "beta", "mid", "zeta"}
		for i, f := range buf {
			if f.Key != want[i] {
				t.Fatalf("round %d: field %d = %q, want %q (sorted)", round, i, f.Key, want[i])
			}
			if !f.Value.Equal(p.Fields[f.Key]) {
				t.Fatalf("round %d: field %q value mismatch", round, f.Key)
			}
		}
	}
	// Appending after existing entries must only sort the new tail.
	buf = Point{Fields: map[string]Value{"a": Float(9)}}.AppendFields(buf)
	if len(buf) != 5 || buf[4].Key != "a" {
		t.Fatalf("append to non-empty dst: %+v", buf)
	}
	if none := (Point{}).AppendFields(nil); len(none) != 0 {
		t.Fatalf("no fields should append nothing, got %+v", none)
	}
}
