package dashboard

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/tsdb"
)

// This file renders panels as text: the replacement for Grafana's graph
// drawing. Graph panels become unicode sparklines with min/max/last
// summaries; table and text panels pass through.

var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a fixed-height unicode strip. NaNs render as
// spaces. An empty series yields an empty string.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if math.IsInf(lo, 1) {
		return strings.Repeat(" ", len(values))
	}
	var b strings.Builder
	for _, v := range values {
		if math.IsNaN(v) {
			b.WriteByte(' ')
			continue
		}
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkLevels)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkLevels) {
			idx = len(sparkLevels) - 1
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

// SeriesSummary condenses one query result series for rendering.
type SeriesSummary struct {
	Legend string
	Values []float64
	Min    float64
	Max    float64
	Last   float64
}

// summarize extracts the first value column of a result series.
func summarize(rs tsdb.ResultSeries) SeriesSummary {
	s := SeriesSummary{Min: math.Inf(1), Max: math.Inf(-1), Last: math.NaN()}
	if len(rs.Tags) > 0 {
		var parts []string
		for k, v := range rs.Tags {
			parts = append(parts, k+"="+v)
		}
		if len(parts) == 1 {
			s.Legend = parts[0]
		} else {
			// Deterministic ordering for multi-tag legends.
			for i := 0; i < len(parts); i++ {
				for j := i + 1; j < len(parts); j++ {
					if parts[j] < parts[i] {
						parts[i], parts[j] = parts[j], parts[i]
					}
				}
			}
			s.Legend = strings.Join(parts, ",")
		}
	}
	for _, row := range rs.Values {
		if len(row) < 2 || row[1] == nil {
			s.Values = append(s.Values, math.NaN())
			continue
		}
		v, ok := tsdb.FloatValue(row[1])
		if !ok {
			s.Values = append(s.Values, math.NaN())
			continue
		}
		s.Values = append(s.Values, v)
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		s.Last = v
	}
	if math.IsInf(s.Min, 1) {
		s.Min, s.Max = math.NaN(), math.NaN()
	}
	return s
}

// RenderPanel executes a panel's queries through the query API and renders
// the result as text. Graph panels become one sparkline per result series.
// Queries are parsed once and handed to the querier as pre-built
// statements, so the local path skips the InfluxQL string round-trip and
// the remote path ships the canonical text.
func RenderPanel(ctx context.Context, qr tsdb.Querier, dbName string, p Panel) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", p.Title)
	switch p.Type {
	case "text":
		b.WriteString(p.Content)
		if !strings.HasSuffix(p.Content, "\n") {
			b.WriteByte('\n')
		}
		return b.String(), nil
	case "graph", "table", "histogram":
		for _, tgt := range p.Targets {
			stmts, err := tsdb.ParseQuery(tgt.Query)
			if err != nil {
				return "", fmt.Errorf("dashboard: panel %d: %w", p.ID, err)
			}
			resp, err := qr.Query(ctx, tsdb.Request{Database: dbName, Statements: stmts})
			if err == nil {
				err = resp.Err()
			}
			if err != nil {
				return "", fmt.Errorf("dashboard: panel %d: %w", p.ID, err)
			}
			for _, res := range resp.Results {
				if len(res.Series) == 0 {
					b.WriteString("(no data)\n")
					continue
				}
				for _, rs := range res.Series {
					s := summarize(rs)
					legend := s.Legend
					if legend == "" {
						legend = rs.Name
					}
					if p.Type == "histogram" {
						fmt.Fprintf(&b, "%s (n=%d)\n%s", legend, len(s.Values),
							RenderHistogram(Histogram(s.Values, 10), 40))
						continue
					}
					fmt.Fprintf(&b, "%-28s %s  min %.4g  max %.4g  last %.4g\n",
						legend, Sparkline(s.Values), s.Min, s.Max, s.Last)
				}
			}
		}
		return b.String(), nil
	default:
		return "", fmt.Errorf("dashboard: panel %d has unknown type %q", p.ID, p.Type)
	}
}

// RenderDashboard renders all rows and panels plus the annotation events,
// fetching every query through the given querier.
func RenderDashboard(ctx context.Context, qr tsdb.Querier, dbName string, d *Dashboard) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s ###\n", d.Title)
	if !d.Time.From.IsZero() {
		fmt.Fprintf(&b, "time range: %s .. %s\n",
			d.Time.From.Format(time.RFC3339), d.Time.To.Format(time.RFC3339))
	}
	for _, ann := range d.Annotations {
		stmts, err := tsdb.ParseQuery(ann.Query)
		if err != nil {
			continue
		}
		resp, err := qr.Query(ctx, tsdb.Request{Database: dbName, Statements: stmts})
		if err != nil {
			continue
		}
		for _, res := range resp.Results {
			for _, rs := range res.Series {
				for _, row := range rs.Values {
					if len(row) >= 2 {
						if text, ok := row[1].(string); ok {
							fmt.Fprintf(&b, "event @ %v: %s\n", row[0], text)
						}
					}
				}
			}
		}
	}
	for _, row := range d.Rows {
		fmt.Fprintf(&b, "\n-- %s --\n", row.Title)
		for _, p := range row.Panels {
			s, err := RenderPanel(ctx, qr, dbName, p)
			if err != nil {
				return "", err
			}
			b.WriteString(s)
		}
	}
	return b.String(), nil
}
