// Command lms-benchjson converts `go test -bench` text output into
// machine-readable JSON, so CI can archive benchmark results per PR
// (BENCH_pr*.json) and future changes can be checked against the recorded
// perf trajectory instead of eyeballing log lines.
//
// It reads the benchmark log from stdin (or -in) and writes a JSON array
// to stdout (or -o), one object per benchmark line:
//
//	{"name": "BenchmarkO3_TSDBWriteInOrder", "procs": 4, "runs": 41702,
//	 "ns_per_op": 29058, "bytes_per_op": 9683, "allocs_per_op": 3,
//	 "metrics": {"points/s": 3441417}}
//
// Custom b.ReportMetric values land in "metrics"; non-benchmark lines
// (goos/pkg headers, PASS/ok) are skipped. Context lines (goos, goarch,
// cpu, pkg) are captured into a leading "_env" object.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem | lms-benchjson -o BENCH_pr4.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/cli"
)

func main() { cli.Main("lms-benchjson", run) }

// result is one parsed benchmark line.
type result struct {
	Name        string             `json:"name"`
	Procs       int                `json:"procs,omitempty"`
	Runs        int64              `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// document is the emitted JSON shape.
type document struct {
	Env     map[string]string `json:"env,omitempty"`
	Results []result          `json:"results"`
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("lms-benchjson", flag.ContinueOnError)
	in := fs.String("in", "", "input file (default stdin)")
	out := fs.String("o", "", "output file (default stdout)")
	if done, err := cli.Parse(fs, args, stdout); done || err != nil {
		return err
	}

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	doc, err := parseBench(r)
	if err != nil {
		return err
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out != "" {
		return os.WriteFile(*out, enc, 0o644)
	}
	_, err = stdout.Write(enc)
	return err
}

// parseBench scans `go test -bench` output. A benchmark line is
//
//	BenchmarkName[-procs] <tab> N <tab> v1 unit1 <tab> v2 unit2 ...
//
// where ns/op, B/op and allocs/op map to fixed fields and every other
// unit becomes a custom metric.
func parseBench(r io.Reader) (*document, error) {
	doc := &document{Env: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "PASS" || line == "FAIL":
			continue
		case strings.HasPrefix(line, "goos:") || strings.HasPrefix(line, "goarch:") ||
			strings.HasPrefix(line, "pkg:") || strings.HasPrefix(line, "cpu:"):
			if k, v, ok := strings.Cut(line, ":"); ok {
				doc.Env[k] = strings.TrimSpace(v)
			}
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		res := result{Metrics: map[string]float64{}}
		res.Name = fields[0]
		if name, procs, ok := strings.Cut(fields[0], "-"); ok {
			if p, err := strconv.Atoi(procs); err == nil {
				res.Name, res.Procs = name, p
			}
		}
		runs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("lms-benchjson: bad iteration count in %q", line)
		}
		res.Runs = runs
		// The remainder is value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("lms-benchjson: bad value %q in %q", fields[i], line)
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				res.Metrics[fields[i+1]] = v
			}
		}
		if len(res.Metrics) == 0 {
			res.Metrics = nil
		}
		doc.Results = append(doc.Results, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Env) == 0 {
		doc.Env = nil
	}
	return doc, nil
}
