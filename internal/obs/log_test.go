package obs

import (
	"strings"
	"testing"
)

func TestParseLogLevel(t *testing.T) {
	cases := []struct {
		in   string
		want LogLevel
	}{
		{"debug", LevelDebug},
		{"", LevelInfo},
		{"info", LevelInfo},
		{"INFO", LevelInfo},
		{" warn ", LevelWarn},
		{"warning", LevelWarn},
		{"error", LevelError},
		{"off", LevelOff},
		{"none", LevelOff},
	}
	for _, c := range cases {
		got, err := ParseLogLevel(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParseLogLevel(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParseLogLevel("verbose"); err == nil {
		t.Fatal("unknown level accepted")
	}
}

func TestLoggerLevelFiltering(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, LevelWarn)
	l.Debugf("quiet %d", 1)
	l.Infof("quiet %d", 2)
	l.Warnf("loud %d", 3)
	l.Errorf("loud %d", 4)
	out := sb.String()
	if strings.Contains(out, "quiet") {
		t.Fatalf("suppressed levels leaked: %q", out)
	}
	for _, want := range []string{"WARN loud 3\n", "ERROR loud 4\n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in %q", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 2 {
		t.Fatalf("want 2 lines, got %d: %q", lines, out)
	}

	l.SetLevel(LevelOff)
	if l.Level() != LevelOff {
		t.Fatalf("Level() = %v", l.Level())
	}
	sb.Reset()
	l.Errorf("still quiet")
	if sb.Len() != 0 {
		t.Fatalf("LevelOff emitted: %q", sb.String())
	}
}

func TestLoggerSetOutputAndDefault(t *testing.T) {
	var sb strings.Builder
	prev := Log().SetOutput(&sb)
	defer Log().SetOutput(prev)
	oldLevel := Log().Level()
	SetLogLevel(LevelDebug)
	defer SetLogLevel(oldLevel)

	Debugf("d=%d", 1)
	Infof("i=%d", 2)
	Warnf("w=%d", 3)
	Errorf("e=%d", 4)
	out := sb.String()
	for _, want := range []string{"DEBUG d=1", "INFO i=2", "WARN w=3", "ERROR e=4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("default logger missing %q: %q", want, out)
		}
	}
	// Every line is timestamped: 2006-01-02T15:04:05.000Z LEVEL msg
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if len(line) < 25 || line[4] != '-' || line[10] != 'T' || line[23] != 'Z' {
			t.Fatalf("line not timestamped: %q", line)
		}
	}

	// SetOutput returns the writer it replaced.
	var other strings.Builder
	if got := Log().SetOutput(&other); got != &sb {
		t.Fatalf("SetOutput returned %v, want the buffer", got)
	}
	Log().SetOutput(&sb)
}
