package dashboard

// BuiltinTemplates returns the panel templates shipped with the agent. The
// originals are JSON exports of hand-built Grafana panels stored in the
// template location; here they are Go string constants with the same
// substitution model. Sites add templates for their own application-level
// measurements (Sect. IV), which is why selection is by measurement name
// with a "*" fallback.
func BuiltinTemplates() []PanelTemplate {
	return []PanelTemplate{
		{
			Measurement: "cpu",
			JSON: `{
  "title": "CPU {{.Field}} [%]",
  "type": "graph",
  "span": 6,
  "unit": "percent",
  "targets": [{
    "query": "SELECT mean({{.Field}}) FROM cpu WHERE jobid = '{{.JobID}}' AND time >= {{.StartNS}} AND time <= {{.EndNS}} GROUP BY time(60s), hostname",
    "legend": "$tag_hostname"
  }]
}`,
		},
		{
			Measurement: "likwid_mem_dp",
			JSON: `{
  "title": "LIKWID {{.Field}}",
  "type": "graph",
  "span": 6,
  "targets": [{
    "query": "SELECT mean({{.Field}}) FROM likwid_mem_dp WHERE jobid = '{{.JobID}}' AND time >= {{.StartNS}} AND time <= {{.EndNS}} GROUP BY time(60s), hostname",
    "legend": "$tag_hostname"
  }]
}`,
		},
		{
			Measurement: "likwid_flops_dp",
			JSON: `{
  "title": "LIKWID {{.Field}}",
  "type": "graph",
  "span": 6,
  "targets": [{
    "query": "SELECT mean({{.Field}}) FROM likwid_flops_dp WHERE jobid = '{{.JobID}}' AND time >= {{.StartNS}} AND time <= {{.EndNS}} GROUP BY time(60s), hostname",
    "legend": "$tag_hostname"
  }]
}`,
		},
		{
			Measurement: "memory",
			JSON: `{
  "title": "Memory {{.Field}}",
  "type": "graph",
  "span": 6,
  "targets": [{
    "query": "SELECT mean({{.Field}}) FROM memory WHERE jobid = '{{.JobID}}' AND time >= {{.StartNS}} AND time <= {{.EndNS}} GROUP BY time(60s), hostname",
    "legend": "$tag_hostname"
  }]
}`,
		},
		{
			// Generic fallback: any other measurement (application-level
			// series from libusermetric land here automatically).
			Measurement: "*",
			JSON: `{
  "title": "{{.Measurement}} {{.Field}}",
  "type": "graph",
  "span": 6,
  "targets": [{
    "query": "SELECT mean({{.Field}}) FROM \"{{.Measurement}}\" WHERE jobid = '{{.JobID}}' AND time >= {{.StartNS}} AND time <= {{.EndNS}} GROUP BY time(60s), hostname",
    "legend": "$tag_hostname"
  }]
}`,
		},
	}
}
