package durable

// Checkpoint files: one immutable, self-contained serialization of a
// database's columnar state (the on-disk analogue of InfluxDB's read-only
// TSM files). The tsdb layer converts its in-memory runs to and from the
// neutral Snapshot structs below; this file owns the bytes.
//
// Layout:
//
//	[8B magic "LMSCKP1\n"][payload][4B CRC32 (IEEE) of payload]
//
// The payload nests measurements → series → runs → columns. Sorted
// timestamp columns are delta-encoded as uvarints after a fixed 64-bit
// anchor (metric samples arrive at near-constant intervals, so deltas are
// 1-5 bytes instead of 8), integer columns are zigzag varints, float
// columns raw 64-bit words, string columns varint ids into the
// measurement's interned table. The file is written to a temp name,
// fsynced and atomically renamed to
//
//	checkpoint-%08d.snap
//
// where the number is the WAL segment recovery must replay from: state in
// segments below it is captured by the checkpoint, so they are deleted
// once the rename lands. Load walks the checkpoints newest-first and
// skips files that fail the CRC (a crash can only tear the temp file, but
// media corruption of a renamed checkpoint must not take recovery down
// with it when an older valid checkpoint plus a longer WAL tail exists).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/fsys"
	"repro/internal/lineproto"
)

const snapMagic = "LMSCKP1\n"

// Snapshot is the neutral, format-owning image of one database.
type Snapshot struct {
	Measurements []Measurement
}

// Measurement is one measurement's schema, interned strings and series.
type Measurement struct {
	Name   string
	Fields []FieldSchema
	Strs   []string // interned string field values; columns hold ids
	Series []Series
}

// FieldSchema records one field of the measurement schema.
type FieldSchema struct {
	Name string
	Kind lineproto.ValueKind
}

// Series is one tag set's run list, in creation (log-structured) order.
type Series struct {
	Tags map[string]string
	Runs []Run
}

// Run is one sorted columnar run: a timestamp column plus one column per
// field present in the run.
type Run struct {
	Ts   []int64
	Cols []Col
}

// Col is one field's value column. Exactly one value arm is populated:
// Floats (KindFloat), Ints (KindInt and KindBool), StrIDs (KindString,
// ids into Measurement.Strs) or Vals when Mixed. A nil Present bitmap
// means every row carries a value.
type Col struct {
	Name    string
	Kind    lineproto.ValueKind
	Mixed   bool
	Present []uint64
	Floats  []float64
	Ints    []int64
	StrIDs  []uint32
	Vals    []lineproto.Value
}

func snapshotName(seg int) string { return fmt.Sprintf("checkpoint-%08d.snap", seg) }

func parseSnapshotName(name string) (int, bool) {
	var idx int
	if n, err := fmt.Sscanf(name, "checkpoint-%08d.snap", &idx); n != 1 || err != nil {
		return 0, false
	}
	if snapshotName(idx) != name {
		return 0, false
	}
	return idx, true
}

// --- encoding ----------------------------------------------------------

func appendSnapshot(dst []byte, s *Snapshot) []byte {
	dst = appendUvarint(dst, uint64(len(s.Measurements)))
	for mi := range s.Measurements {
		m := &s.Measurements[mi]
		dst = appendString(dst, m.Name)
		dst = appendUvarint(dst, uint64(len(m.Fields)))
		for _, f := range m.Fields {
			dst = appendString(dst, f.Name)
			dst = append(dst, byte(f.Kind))
		}
		dst = appendUvarint(dst, uint64(len(m.Strs)))
		for _, v := range m.Strs {
			dst = appendString(dst, v)
		}
		dst = appendUvarint(dst, uint64(len(m.Series)))
		for si := range m.Series {
			dst = appendSeries(dst, &m.Series[si])
		}
	}
	return dst
}

func appendSeries(dst []byte, sr *Series) []byte {
	keys := make([]string, 0, len(sr.Tags))
	for k := range sr.Tags {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	dst = appendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		dst = appendString(dst, k)
		dst = appendString(dst, sr.Tags[k])
	}
	dst = appendUvarint(dst, uint64(len(sr.Runs)))
	for ri := range sr.Runs {
		dst = appendRun(dst, &sr.Runs[ri])
	}
	return dst
}

func appendRun(dst []byte, r *Run) []byte {
	n := len(r.Ts)
	dst = appendUvarint(dst, uint64(n))
	if n > 0 {
		dst = appendFixed64(dst, uint64(r.Ts[0]))
		for i := 1; i < n; i++ {
			dst = appendUvarint(dst, uint64(r.Ts[i]-r.Ts[i-1])) // sorted: non-negative
		}
	}
	dst = appendUvarint(dst, uint64(len(r.Cols)))
	for ci := range r.Cols {
		dst = appendCol(dst, &r.Cols[ci], n)
	}
	return dst
}

const (
	colFlagMixed   = 1 << 0
	colFlagPresent = 1 << 1
)

func appendCol(dst []byte, c *Col, n int) []byte {
	dst = appendString(dst, c.Name)
	dst = append(dst, byte(c.Kind))
	flags := byte(0)
	if c.Mixed {
		flags |= colFlagMixed
	}
	if c.Present != nil {
		flags |= colFlagPresent
	}
	dst = append(dst, flags)
	if c.Present != nil {
		for _, w := range c.Present {
			dst = appendFixed64(dst, w)
		}
	}
	switch {
	case c.Mixed:
		for i := 0; i < n; i++ {
			dst = appendValue(dst, c.Vals[i])
		}
	case c.Kind == lineproto.KindFloat:
		for i := 0; i < n; i++ {
			dst = appendFixed64(dst, math.Float64bits(c.Floats[i]))
		}
	case c.Kind == lineproto.KindString:
		for i := 0; i < n; i++ {
			dst = appendUvarint(dst, uint64(c.StrIDs[i]))
		}
	default: // KindInt, KindBool
		for i := 0; i < n; i++ {
			dst = binary.AppendVarint(dst, c.Ints[i])
		}
	}
	return dst
}

// --- decoding ----------------------------------------------------------

func decodeSnapshot(payload []byte) (*Snapshot, error) {
	r := &batchReader{b: payload}
	nm, err := r.count()
	if err != nil {
		return nil, err
	}
	s := &Snapshot{}
	if nm > 0 {
		s.Measurements = make([]Measurement, 0, nm)
	}
	for i := 0; i < nm; i++ {
		m, err := decodeMeasurement(r)
		if err != nil {
			return nil, err
		}
		s.Measurements = append(s.Measurements, m)
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("durable: %d trailing bytes after snapshot", len(r.b))
	}
	return s, nil
}

func decodeMeasurement(r *batchReader) (Measurement, error) {
	var m Measurement
	var err error
	if m.Name, err = r.str(); err != nil {
		return m, err
	}
	nf, err := r.count()
	if err != nil {
		return m, err
	}
	if nf > 0 {
		m.Fields = make([]FieldSchema, 0, nf)
	}
	for i := 0; i < nf; i++ {
		var f FieldSchema
		if f.Name, err = r.str(); err != nil {
			return m, err
		}
		if len(r.b) < 1 {
			return m, errShortBatch
		}
		f.Kind = lineproto.ValueKind(r.b[0])
		r.b = r.b[1:]
		m.Fields = append(m.Fields, f)
	}
	ns, err := r.count()
	if err != nil {
		return m, err
	}
	if ns > 0 {
		m.Strs = make([]string, 0, ns)
	}
	for i := 0; i < ns; i++ {
		v, err := r.str()
		if err != nil {
			return m, err
		}
		m.Strs = append(m.Strs, v)
	}
	nser, err := r.count()
	if err != nil {
		return m, err
	}
	if nser > 0 {
		m.Series = make([]Series, 0, nser)
	}
	for i := 0; i < nser; i++ {
		sr, err := decodeSeries(r)
		if err != nil {
			return m, err
		}
		m.Series = append(m.Series, sr)
	}
	return m, nil
}

func decodeSeries(r *batchReader) (Series, error) {
	var sr Series
	nt, err := r.count()
	if err != nil {
		return sr, err
	}
	if nt > 0 {
		sr.Tags = make(map[string]string, nt)
		for i := 0; i < nt; i++ {
			k, err := r.str()
			if err != nil {
				return sr, err
			}
			v, err := r.str()
			if err != nil {
				return sr, err
			}
			sr.Tags[k] = v
		}
	}
	nr, err := r.count()
	if err != nil {
		return sr, err
	}
	if nr > 0 {
		sr.Runs = make([]Run, 0, nr)
	}
	for i := 0; i < nr; i++ {
		run, err := decodeRun(r)
		if err != nil {
			return sr, err
		}
		sr.Runs = append(sr.Runs, run)
	}
	return sr, nil
}

func decodeRun(r *batchReader) (Run, error) {
	var run Run
	n64, err := r.uvarint()
	if err != nil {
		return run, err
	}
	if n64 > uint64(len(r.b)) {
		return run, fmt.Errorf("durable: implausible run length %d", n64)
	}
	n := int(n64)
	if n > 0 {
		anchor, err := r.fixed64()
		if err != nil {
			return run, err
		}
		run.Ts = make([]int64, n)
		run.Ts[0] = int64(anchor)
		for i := 1; i < n; i++ {
			d, err := r.uvarint()
			if err != nil {
				return run, err
			}
			run.Ts[i] = run.Ts[i-1] + int64(d)
		}
	}
	nc, err := r.count()
	if err != nil {
		return run, err
	}
	if nc > 0 {
		run.Cols = make([]Col, 0, nc)
	}
	for i := 0; i < nc; i++ {
		c, err := decodeCol(r, n)
		if err != nil {
			return run, err
		}
		run.Cols = append(run.Cols, c)
	}
	return run, nil
}

func decodeCol(r *batchReader, n int) (Col, error) {
	var c Col
	var err error
	if c.Name, err = r.str(); err != nil {
		return c, err
	}
	if len(r.b) < 2 {
		return c, errShortBatch
	}
	c.Kind = lineproto.ValueKind(r.b[0])
	flags := r.b[1]
	r.b = r.b[2:]
	c.Mixed = flags&colFlagMixed != 0
	if flags&colFlagPresent != 0 {
		words := (n + 63) / 64
		c.Present = make([]uint64, words)
		for i := 0; i < words; i++ {
			w, err := r.fixed64()
			if err != nil {
				return c, err
			}
			c.Present[i] = w
		}
	}
	if n == 0 {
		return c, nil
	}
	switch {
	case c.Mixed:
		c.Vals = make([]lineproto.Value, n)
		for i := 0; i < n; i++ {
			if c.Vals[i], err = r.value(); err != nil {
				return c, err
			}
		}
	case c.Kind == lineproto.KindFloat:
		c.Floats = make([]float64, n)
		for i := 0; i < n; i++ {
			bits, err := r.fixed64()
			if err != nil {
				return c, err
			}
			c.Floats[i] = math.Float64frombits(bits)
		}
	case c.Kind == lineproto.KindString:
		c.StrIDs = make([]uint32, n)
		for i := 0; i < n; i++ {
			id, err := r.uvarint()
			if err != nil {
				return c, err
			}
			c.StrIDs[i] = uint32(id)
		}
	default:
		c.Ints = make([]int64, n)
		for i := 0; i < n; i++ {
			if c.Ints[i], err = r.varint(); err != nil {
				return c, err
			}
		}
	}
	return c, nil
}

// --- files -------------------------------------------------------------

// WriteSnapshot atomically writes s as the checkpoint replaying from WAL
// segment seg, then removes superseded checkpoint files. All file
// operations go through fs (nil selects the real filesystem). The
// returned error is nil only once the new checkpoint is durably on disk:
// temp file written and fsynced, renamed into place, directory synced. A
// crash anywhere before that last barrier leaves at worst a stray .tmp
// file and the previous checkpoint intact.
func WriteSnapshot(fs fsys.FS, dir string, seg int, s *Snapshot) error {
	if fs == nil {
		fs = fsys.OS{}
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	payload := appendSnapshot(nil, s)
	final := filepath.Join(dir, snapshotName(seg))
	tmp := final + ".tmp"
	f, err := fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	_, err = f.Write([]byte(snapMagic))
	if err == nil {
		_, err = f.Write(payload)
	}
	if err == nil {
		var trailer [4]byte
		binary.LittleEndian.PutUint32(trailer[:], crc32.ChecksumIEEE(payload))
		_, err = f.Write(trailer[:])
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = fs.Remove(tmp)
		return err
	}
	if err := fs.Rename(tmp, final); err != nil {
		_ = fs.Remove(tmp)
		return err
	}
	if err := fs.SyncDir(dir); err != nil {
		return err
	}
	// The new checkpoint is durable; superseded ones and stray temp files
	// only waste space now.
	names, err := fs.ReadDirNames(dir)
	if err != nil {
		return err
	}
	for _, name := range names {
		if idx, ok := parseSnapshotName(name); ok && idx != seg {
			_ = fs.Remove(filepath.Join(dir, name))
		} else if strings.HasSuffix(name, ".snap.tmp") && name != filepath.Base(tmp) {
			_ = fs.Remove(filepath.Join(dir, name))
		}
	}
	return nil
}

// LoadLatestSnapshot loads the newest valid checkpoint in dir through fs
// (nil selects the real filesystem). It returns the snapshot and the WAL
// segment index replay must start from, or (nil, 0, nil) when no usable
// checkpoint exists. Corrupt checkpoint files are skipped in favour of
// older ones.
func LoadLatestSnapshot(fs fsys.FS, dir string) (*Snapshot, int, error) {
	if fs == nil {
		fs = fsys.OS{}
	}
	names, err := fs.ReadDirNames(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	var idxs []int
	for _, name := range names {
		if idx, ok := parseSnapshotName(name); ok {
			idxs = append(idxs, idx)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(idxs)))
	for _, idx := range idxs {
		data, err := fs.ReadFile(filepath.Join(dir, snapshotName(idx)))
		if err != nil {
			return nil, 0, err
		}
		if len(data) < len(snapMagic)+4 || string(data[:len(snapMagic)]) != snapMagic {
			continue
		}
		payload := data[len(snapMagic) : len(data)-4]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[len(data)-4:]) {
			continue
		}
		s, err := decodeSnapshot(payload)
		if err != nil {
			continue
		}
		return s, idx, nil
	}
	return nil, 0, nil
}
