// Command lms-dashboard is the dashboard agent in offline mode: from a
// line-protocol dump it generates the Grafana-model dashboard JSON for a
// job out of the panel templates (paper Sect. III-D) and optionally renders
// the panels as text graphs.
//
// Usage:
//
//	lms-dashboard -data job.lp -job 42 -user alice -nodes node01,node02 \
//	              -render
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/cli"
	"repro/internal/dashboard"
	"repro/internal/lineproto"
	"repro/internal/tsdb"
)

func main() { cli.Main("lms-dashboard", run) }

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("lms-dashboard", flag.ContinueOnError)
	dataPath := fs.String("data", "", "line-protocol dump file (required)")
	jobID := fs.String("job", "", "job id (required)")
	user := fs.String("user", "", "job owner")
	nodesArg := fs.String("nodes", "", "comma-separated node list (default: hostnames in the data)")
	render := fs.Bool("render", false, "render the panels as text instead of emitting JSON")
	if done, err := cli.Parse(fs, args, stdout); done || err != nil {
		return err
	}
	if *dataPath == "" || *jobID == "" {
		return cli.UsageErr(fs, "-data and -job are required")
	}

	raw, err := os.ReadFile(*dataPath)
	if err != nil {
		return err
	}
	pts, err := lineproto.Parse(raw)
	if err != nil {
		return fmt.Errorf("parse: %w", err)
	}
	if len(pts) == 0 {
		return fmt.Errorf("empty dump")
	}
	store := tsdb.NewStore()
	db := store.CreateDatabase("lms")
	if err := db.WriteBatch(pts); err != nil {
		return fmt.Errorf("load: %w", err)
	}

	var nodes []string
	if *nodesArg != "" {
		nodes = strings.Split(*nodesArg, ",")
	} else {
		nodes = db.TagValues("", "hostname")
	}
	start, end := pts[0].Time, pts[0].Time
	for _, p := range pts {
		if p.Time.Before(start) {
			start = p.Time
		}
		if p.Time.After(end) {
			end = p.Time
		}
	}

	agent := &dashboard.Agent{DB: db, Evaluator: &analysis.Evaluator{DB: db}}
	d, err := agent.GenerateJobDashboard(analysis.JobMeta{
		ID: *jobID, User: *user, Nodes: nodes,
		Start: start, End: end.Add(time.Second),
	})
	if err != nil {
		return err
	}
	if err := d.Validate(); err != nil {
		return fmt.Errorf("generated dashboard invalid: %w", err)
	}
	if *render {
		text, err := dashboard.RenderDashboard(store, "lms", d)
		if err != nil {
			return fmt.Errorf("render: %w", err)
		}
		fmt.Fprint(stdout, text)
		return nil
	}
	out, err := d.MarshalIndent()
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, string(out))
	return nil
}
